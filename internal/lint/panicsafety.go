// panic-safety: par.For / ForEach / ForChunked / Run are thin wrappers
// that re-raise contained worker panics on the calling goroutine — fine
// at a leaf that cannot fail, fatal anywhere a *par.PanicError should
// have been an error return. New code must use the ctx-aware *Err
// variants; surviving legacy call sites carry an //hcdlint:allow with
// the safety argument.
//
// The same containment discipline applies one layer up: an HTTP handler
// registered on a net/http mux runs query code that may re-panic, and
// net/http's per-connection recover kills the response mid-write (a
// torn body) instead of producing a diagnosable JSON 500. Every
// Handle/HandleFunc registration in module packages must therefore pass
// through serve.Protect, the recovery wrapper that converts a handler
// panic into a complete JSON error document. internal/obs is exempt:
// its debug mux predates serve and cannot import it (serve depends on
// obs for its metrics), and its handlers only format internal state.
package lint

import "go/ast"

// repanickingPar lists the wrapper entry points the check steers away
// from, mapped to their containment-preserving replacements.
var repanickingPar = map[string]string{
	"For":        "ForErr",
	"ForEach":    "ForEachErr",
	"ForChunked": "ForChunkedErr",
	"Run":        "RunErr",
}

func panicSafetyCheck() *Check {
	return &Check{
		Name: "panic-safety",
		Doc:  "library code must use the ctx-aware par.*Err variants, not the re-panicking wrappers; HTTP handlers must be registered through serve.Protect",
		Run: func(ctx *Context) ([]Diagnostic, error) {
			parPath := ctx.Loader.Module + "/internal/par"
			servePath := ctx.Loader.Module + "/internal/serve"
			obsPath := ctx.Loader.Module + "/internal/obs"
			var diags []Diagnostic
			walkFiles(ctx, func(pkg *Package, f *ast.File) {
				if pkg.Path == parPath {
					return // the wrappers' own definitions live here
				}
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeFunc(pkg, call)
					if fn == nil || fn.Pkg() == nil {
						return true
					}
					switch fn.Pkg().Path() {
					case parPath:
						if repl, bad := repanickingPar[fn.Name()]; bad {
							diags = append(diags, ctx.diag("panic-safety", call.Pos(),
								"par.%s re-raises worker panics on the caller; use par.%s (ctx-aware, returns *par.PanicError) so failures stay contained", fn.Name(), repl))
						}
					case "net/http":
						// Covers both the package-level http.Handle /
						// http.HandleFunc and the (*http.ServeMux) methods.
						if pkg.Path == obsPath || len(call.Args) != 2 {
							return true
						}
						switch fn.Name() {
						case "HandleFunc":
							diags = append(diags, ctx.diag("panic-safety", call.Pos(),
								"http.HandlerFunc registered without the recovery wrapper; use Handle with serve.Protect(http.HandlerFunc(h)) so a handler panic becomes a JSON 500, not a torn response"))
						case "Handle":
							if !isProtectCall(pkg, servePath, call.Args[1]) {
								diags = append(diags, ctx.diag("panic-safety", call.Pos(),
									"handler registered without the recovery wrapper; wrap it as serve.Protect(h) so a handler panic becomes a JSON 500, not a torn response"))
							}
						}
					}
					return true
				})
			})
			return diags, nil
		},
	}
}

// isProtectCall reports whether e is (possibly parenthesised) a call to
// serve.Protect, or a middleware-wrapper call — s.observed(route,
// Protect(h)), s.refreshed(Protect(h)) — whose argument tree contains
// one. Recovery composes through wrappers: a panic below the wrapper
// still unwinds into Protect, so instrumentation outside it is safe.
func isProtectCall(pkg *Package, servePath string, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pkg, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == servePath && fn.Name() == "Protect" {
		return true
	}
	for _, a := range call.Args {
		if isProtectCall(pkg, servePath, a) {
			return true
		}
	}
	return false
}
