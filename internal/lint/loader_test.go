package lint

import (
	"testing"
)

// TestVariantSharesCache pins the cross-tag-set package cache: loading
// the module under a second tag set reuses every package whose file
// list and dependency identities are unchanged, and re-checks exactly
// the tag-sensitive packages (the noop mirrors) plus their dependents.
func TestVariantSharesCache(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module twice; skipped under -short")
	}
	base, err := NewLoader(".", nil)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	basePkgs, err := base.ModulePackages()
	if err != nil {
		t.Fatalf("base ModulePackages: %v", err)
	}
	_, missesAfterBase := base.CacheStats()

	noobs := base.Variant([]string{"noobs"})
	noobsPkgs, err := noobs.ModulePackages()
	if err != nil {
		t.Fatalf("noobs ModulePackages: %v", err)
	}
	hits, misses := noobs.CacheStats()
	if hits == 0 {
		t.Fatalf("no cache hits on the noobs variant: the family cache is not sharing packages")
	}

	byPath := func(pkgs []*Package) map[string]*Package {
		m := map[string]*Package{}
		for _, p := range pkgs {
			m[p.Path] = p
		}
		return m
	}
	b, n := byPath(basePkgs), byPath(noobsPkgs)

	// obs selects different files under noobs: must be re-checked.
	obsPath := base.Module + "/internal/obs"
	if b[obsPath] == nil || n[obsPath] == nil {
		t.Fatalf("internal/obs missing from a load (base %v, noobs %v)", b[obsPath] != nil, n[obsPath] != nil)
	}
	if b[obsPath] == n[obsPath] {
		t.Errorf("internal/obs shared across tag sets despite selecting different files")
	}
	// Packages outside obs's dependency cone are shared: unionfind has no
	// module-internal imports at all, and lint (by far the largest
	// package) is tag-free — sharing it is most of the wall-clock win.
	for _, base := range []string{"/internal/unionfind", "/internal/lint", "/internal/metrics"} {
		path := noobs.Module + base
		if b[path] == nil || b[path] != n[path] {
			t.Errorf("%s should be cache-shared across tag sets", path)
		}
	}
	// A dependent of obs re-checks even though its own file list is
	// stable: its Uses/Selections must resolve into the noop obs.
	corePath := base.Module + "/internal/core"
	if b[corePath] == n[corePath] {
		t.Errorf("internal/core depends on the tag-sensitive obs and must be re-checked under noobs")
	}
	if hits < 3 {
		t.Errorf("noobs variant reused %d packages (misses %d of %d total); want at least the tag-free set shared",
			hits, misses-missesAfterBase, misses)
	}
}
