// site-hygiene: fault-injection sites and observability span/metric
// names are string keys matched at runtime — a typo'd or duplicated
// name fails silently (a HCD_FAULTS rule that never fires, a trace that
// mis-attributes work). This check pins every name to a unique string
// literal matching the documented grammar:
//
//	spans & fault sites   pkg.phase[.step]   e.g. "phcd.step2", "peel.round"
//	                      segments: [a-z][a-z0-9]*, 1-3 of them, dot-separated
//	metrics               prometheus style   e.g. "hcd_fault_fired_total"
//	                      hcd_[a-z][a-z0-9_]* — the hcd_ namespace prefix
//	                      is mandatory, so every exported series (the
//	                      hcd_mem_* memory gauges included) is greppable
//	                      and never collides with another exporter's
//	phase stats           span grammar plus '+' fused-stage separators
//	                      e.g. "rank+layout"; names legitimately repeat
//	                      their StartPhase span, so no duplicate check
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

var (
	siteNameRe   = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z][a-z0-9]*){0,2}$`)
	metricNameRe = regexp.MustCompile(`^hcd_[a-z][a-z0-9_]*$`)
	phaseNameRe  = regexp.MustCompile(`^[a-z][a-z0-9]*([.+][a-z][a-z0-9]*){0,2}$`)
)

// nameUse is one collected (name, position) occurrence.
type nameUse struct {
	name string
	pos  token.Pos
}

func siteHygieneCheck() *Check {
	return &Check{
		Name: "site-hygiene",
		Doc:  "faultinject sites and obs span/metric/phase names must be literals matching the name grammars (spans/sites/metrics also unique)",
		Run: func(ctx *Context) ([]Diagnostic, error) {
			module := ctx.Loader.Module
			faultPath := module + "/internal/faultinject"
			obsPath := module + "/internal/obs"
			var diags []Diagnostic
			var sites, spans, metrics []nameUse

			walkFiles(ctx, func(pkg *Package, f *ast.File) {
				// The registries' own implementations manipulate names
				// generically; only call sites are policed.
				if pkg.Path == faultPath || pkg.Path == obsPath {
					return
				}
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeFunc(pkg, call)
					if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
						return true
					}
					switch fn.Pkg().Path() {
					case faultPath:
						if fn.Name() == "Maybe" {
							if lit, ok := stringLit(call.Args[0]); ok {
								sites = append(sites, nameUse{lit, call.Args[0].Pos()})
								diags = append(diags, checkGrammar(ctx, "fault site", lit, siteNameRe, call.Args[0].Pos())...)
							} else {
								diags = append(diags, ctx.diag("site-hygiene", call.Args[0].Pos(),
									"faultinject.Maybe site name must be a string literal so rules and docs can reference it"))
							}
						}
					case obsPath:
						switch fn.Name() {
						case "StartSpan", "StartSpanArg", "StartPhase", "StartSpanTag",
							"StartSpanCtx", "StartSpanCtxArg", "StartPhaseCtx":
							// The Ctx constructors take the context first;
							// the span name sits at argument index 1.
							idx := 0
							switch fn.Name() {
							case "StartSpanCtx", "StartSpanCtxArg", "StartPhaseCtx":
								idx = 1
							}
							if len(call.Args) <= idx {
								return true
							}
							if lit, ok := stringLit(call.Args[idx]); ok {
								spans = append(spans, nameUse{lit, call.Args[idx].Pos()})
								diags = append(diags, checkGrammar(ctx, "span", lit, siteNameRe, call.Args[idx].Pos())...)
							} else {
								diags = append(diags, ctx.diag("site-hygiene", call.Args[idx].Pos(),
									"obs.%s span name must be a string literal so traces stay greppable", fn.Name()))
							}
						case "NewPhaseStat":
							// Phase stats share a name with their StartPhase
							// span on purpose — grammar only, no dup check.
							if lit, ok := stringLit(call.Args[0]); ok {
								diags = append(diags, checkGrammar(ctx, "phase", lit, phaseNameRe, call.Args[0].Pos())...)
							} else {
								diags = append(diags, ctx.diag("site-hygiene", call.Args[0].Pos(),
									"obs.NewPhaseStat phase name must be a string literal so journal rows stay greppable"))
							}
						case "NewCounter", "NewGauge", "NewHistogram":
							name, pos, ok := metricBase(pkg, call.Args[0])
							if !ok {
								diags = append(diags, ctx.diag("site-hygiene", call.Args[0].Pos(),
									"obs.%s metric name must be a string literal (or obs.Name with a literal base)", fn.Name()))
								return true
							}
							metrics = append(metrics, nameUse{name, pos})
							diags = append(diags, checkGrammar(ctx, "metric", name, metricNameRe, pos)...)
						}
					}
					return true
				})
			})

			diags = append(diags, checkDuplicates(ctx, "fault site", sites,
				"duplicate fault sites share one hit counter, making rule triggering ambiguous")...)
			diags = append(diags, checkDuplicates(ctx, "span", spans,
				"duplicate span names make trace attribution ambiguous; qualify the name")...)
			diags = append(diags, checkDuplicates(ctx, "metric", metrics,
				"registering one metric name from two sites double-counts")...)
			return diags, nil
		},
	}
}

// stringLit extracts the value of a string basic literal.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// metricBase resolves a metric-name argument: either a direct string
// literal, or an obs.Name(base, labels...) call whose base is a literal
// (label values may be dynamic; the base is what exposition groups by).
func metricBase(pkg *Package, e ast.Expr) (string, token.Pos, bool) {
	if lit, ok := stringLit(e); ok {
		return lit, e.Pos(), true
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", 0, false
	}
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Name() != "Name" || fn.Pkg() == nil {
		return "", 0, false
	}
	lit, ok := stringLit(call.Args[0])
	if !ok {
		return "", 0, false
	}
	return lit, call.Args[0].Pos(), true
}

// checkGrammar validates one name against its grammar.
func checkGrammar(ctx *Context, kind, name string, re *regexp.Regexp, pos token.Pos) []Diagnostic {
	if re.MatchString(name) {
		return nil
	}
	return []Diagnostic{ctx.diag("site-hygiene", pos,
		"%s name %q does not match the %s grammar %s", kind, name, kind, re.String())}
}

// checkDuplicates flags every occurrence of a name after its first. The
// first occurrence is cited module-root-relative so messages (and the
// testdata golden files) do not depend on where the module is checked
// out.
func checkDuplicates(ctx *Context, kind string, uses []nameUse, why string) []Diagnostic {
	first := map[string]token.Pos{}
	var diags []Diagnostic
	for _, u := range uses {
		if prev, seen := first[u.name]; seen {
			p := ctx.Fset().Position(prev)
			file := p.Filename
			if rel, err := filepath.Rel(ctx.Loader.Dir, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
			diags = append(diags, ctx.diag("site-hygiene", u.pos,
				"%s name %q already used at %s; %s", kind, u.name, fmt.Sprintf("%s:%d", file, p.Line), why))
			continue
		}
		first[u.name] = u.pos
	}
	return diags
}
