package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCtxPropagationCatchesRegression is the seeded-regression gate the
// ctx-propagation check exists for: if someone reintroduces a
// context.Background() into BuildAndIndexCtx's call chain (here:
// handing shellidx.BuildCtx a fresh root instead of the caller's ctx),
// the check must produce a finding in build.go. The module tree is
// copied to a temp dir, the regression is seeded textually, and the
// full check runs over the patched copy.
func TestCtxPropagationCatchesRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and type-checks the whole module; skipped under -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	copyModule(t, root, tmp)

	buildGo := filepath.Join(tmp, "build.go")
	src, err := os.ReadFile(buildGo)
	if err != nil {
		t.Fatal(err)
	}
	seeded := strings.Replace(string(src),
		"shellidx.BuildCtx(ctx,", "shellidx.BuildCtx(context.Background(),", 1)
	if seeded == string(src) {
		t.Fatalf("seed site not found: build.go no longer calls shellidx.BuildCtx(ctx, ...)")
	}
	if err := os.WriteFile(buildGo, []byte(seeded), 0o644); err != nil {
		t.Fatal(err)
	}

	loader, err := NewLoader(tmp, nil)
	if err != nil {
		t.Fatalf("NewLoader on seeded copy: %v", err)
	}
	pkgs, err := loader.ModulePackages()
	if err != nil {
		t.Fatalf("loading seeded copy: %v", err)
	}
	ctx := &Context{Loader: loader, Pkgs: pkgs}
	diags, err := Run(ctx, []*Check{ctxPropagationCheck()})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, d := range diags {
		if filepath.Base(d.File) == "build.go" && strings.Contains(d.Message, "context.Background()") {
			return
		}
	}
	t.Fatalf("ctx-propagation missed the seeded context.Background() in build.go; findings:\n%s", renderDiags(diags))
}

// copyModule copies the Go module tree at root into dst, skipping VCS
// metadata, hidden directories, and testdata (fixtures are irrelevant
// to the seeded check and some deliberately fail to type-check as part
// of a real package load).
func copyModule(t *testing.T, root, dst string) {
	t.Helper()
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if rel != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if rel == "." {
				return nil
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if !strings.HasSuffix(d.Name(), ".go") && d.Name() != "go.mod" {
			return nil
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying module tree: %v", err)
	}
}
