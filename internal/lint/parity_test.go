package lint

import (
	"testing"
)

// TestNoopMirrorsStayInParity is the drift regression test: the noobs
// and nofaults noop builds must expose exactly the exported API of the
// live builds. Renaming, adding or removing one exported symbol on
// either side fails this test (and `go run ./cmd/hcdlint ./...`).
func TestNoopMirrorsStayInParity(t *testing.T) {
	base := newTestLoader(t)
	for _, pair := range DefaultParityPairs(base.Module) {
		t.Run(pair.Tag, func(t *testing.T) {
			live, err := base.Variant(nil).Load(pair.Path)
			if err != nil {
				t.Fatalf("loading live %s: %v", pair.Path, err)
			}
			noop, err := base.Variant([]string{pair.Tag}).Load(pair.Path)
			if err != nil {
				t.Fatalf("loading %s %s: %v", pair.Tag, pair.Path, err)
			}
			for _, d := range DiffSurfaces(Surface(live.Types), Surface(noop.Types)) {
				t.Errorf("%s: %s", pair.Path, describeDiff(d, "default", pair.Tag))
			}
		})
	}
}

// TestSurfaceDiffDetectsDrift proves the differ is not vacuously green:
// a renamed symbol, a changed signature and a changed field type must
// each surface as exactly the expected disagreement.
func TestSurfaceDiffDetectsDrift(t *testing.T) {
	a := map[string]string{
		"Enable":     "func(string)",
		"Maybe":      "func(string)",
		"Fault.Site": "field string",
	}
	b := map[string]string{
		"Enable":     "func(string)",
		"MaybeFault": "func(string)", // renamed
		"Fault.Site": "field []byte", // retyped
	}
	diffs := DiffSurfaces(a, b)
	want := map[string]bool{"Maybe": true, "MaybeFault": true, "Fault.Site": true}
	if len(diffs) != len(want) {
		t.Fatalf("want %d diffs, got %+v", len(want), diffs)
	}
	for _, d := range diffs {
		if !want[d.Symbol] {
			t.Errorf("unexpected diff symbol %q", d.Symbol)
		}
	}
	if DiffSurfaces(a, a) != nil {
		t.Error("identical surfaces must produce no diffs")
	}
}

// TestSurfaceIgnoresParameterNames pins the rule that renaming a
// parameter is not API drift: the live and noop builds routinely differ
// in parameter names ("name string" vs "string").
func TestSurfaceIgnoresParameterNames(t *testing.T) {
	loader := newTestLoader(t)
	pkg, err := loader.Load(loader.Module + "/internal/faultinject")
	if err != nil {
		t.Fatal(err)
	}
	surf := Surface(pkg.Types)
	sig, ok := surf["Maybe"]
	if !ok {
		t.Fatalf("Maybe missing from faultinject surface: %v", surf)
	}
	if sig != "func(string)" {
		t.Errorf("Maybe rendered as %q; parameter names must not appear", sig)
	}
}
