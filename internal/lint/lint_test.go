package lint

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the testdata golden files")

// sharedLoader amortises the one-off `go list -export` call across tests.
var sharedLoader = sync.OnceValues(func() (*Loader, error) {
	return NewLoader(".", nil)
})

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l
}

// runFixture lints one testdata/src package with the full catalogue.
func runFixture(t *testing.T, name string) []Diagnostic {
	t.Helper()
	loader := newTestLoader(t)
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	ctx := &Context{Loader: loader, Pkgs: []*Package{pkg}}
	diags, err := Run(ctx, AllChecks())
	if err != nil {
		t.Fatalf("lint.Run on fixture %s: %v", name, err)
	}
	return diags
}

// renderDiags formats findings with basename-only paths so the golden
// files are machine-independent.
func renderDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s:%d:%d: [%s] %s\n", filepath.Base(d.File), d.Line, d.Col, d.Check, d.Message)
	}
	return b.String()
}

// TestFixtures compares each fixture's findings against its golden file.
// Regenerate with `go test ./internal/lint -run TestFixtures -update`.
func TestFixtures(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no fixtures found: %v", err)
	}
	for _, dir := range fixtures {
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			got := renderDiags(runFixture(t, name))
			golden := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings diverge from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestFixturesFindEveryCheck guards the fixture corpus itself: each
// first-class check must fire at least once across the fixtures, so a
// check silently broken into a no-op fails here even if every golden
// file still matches.
func TestFixturesFindEveryCheck(t *testing.T) {
	fired := map[string]bool{}
	for _, name := range []string{"core", "hindex", "panicsafety", "httpsafety", "sitehygiene", "errcheck", "allowdir", "ctxprop", "goroutines", "atomics", "treeaccum"} {
		for _, d := range runFixture(t, name) {
			fired[d.Check] = true
		}
	}
	for _, check := range []string{"determinism", "panic-safety", "site-hygiene", "errcheck", "allow", "ctx-propagation", "goroutine-lifetime", "atomic-discipline", "hot-loop-alloc"} {
		if !fired[check] {
			t.Errorf("no fixture finding for check %q", check)
		}
	}
}

// TestAllowFiltering pins the directive semantics on the allowdir
// fixture: a well-formed directive waives the next line, a malformed one
// is itself a finding, and a directive for the wrong check waives
// nothing.
func TestAllowFiltering(t *testing.T) {
	diags := runFixture(t, "allowdir")
	byCheck := map[string]int{}
	for _, d := range diags {
		byCheck[d.Check]++
	}
	// Two malformed directives (no check name; no reason).
	if byCheck["allow"] != 2 {
		t.Errorf("want 2 malformed-directive findings, got %d\n%s", byCheck["allow"], renderDiags(diags))
	}
	// Three surviving errcheck findings: below the two malformed
	// directives and below the wrong-check directive. The justified
	// waiver suppresses the fourth.
	if byCheck["errcheck"] != 3 {
		t.Errorf("want 3 surviving errcheck findings, got %d\n%s", byCheck["errcheck"], renderDiags(diags))
	}
}

// TestModuleTreeClean is the repo-wide gate: the current tree must be
// finding-free. A finding here means new code needs fixing or a
// justified //hcdlint:allow.
func TestModuleTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped under -short")
	}
	loader := newTestLoader(t)
	pkgs, err := loader.ModulePackages()
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	ctx := &Context{Loader: loader, Pkgs: pkgs}
	diags, err := Run(ctx, AllChecks())
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestWriteJSON pins the machine-readable schema the CI artifact upload
// depends on.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	diags := []Diagnostic{{Check: "errcheck", File: "x.go", Line: 3, Col: 2, Message: "m"}}
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version     int          `json:"version"`
		Count       int          `json:"count"`
		Diagnostics []Diagnostic `json:"diagnostics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Version != 1 || doc.Count != 1 || len(doc.Diagnostics) != 1 || doc.Diagnostics[0] != diags[0] {
		t.Errorf("round trip mismatch: %+v", doc)
	}
	buf.Reset()
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"diagnostics": []`) {
		t.Errorf("empty findings must serialise as an empty array, got %s", buf.String())
	}
}

// TestKernelPackageMatching pins the base-name rule fixtures rely on.
func TestKernelPackageMatching(t *testing.T) {
	for path, want := range map[string]bool{
		"hcd/internal/core":                       true,
		"hcd/internal/lint/testdata/src/core":     true,
		"hcd/internal/lint/testdata/src/hindex":   true,
		"hcd/internal/coredecomp":                 true,
		"hcd/internal/search":                     true,
		"hcd/internal/obs":                        false,
		"hcd/internal/lint/testdata/src/errcheck": false,
	} {
		if got := IsKernelPackage(path); got != want {
			t.Errorf("IsKernelPackage(%q) = %v, want %v", path, got, want)
		}
	}
}
