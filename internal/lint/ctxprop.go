// ctx-propagation: the containment story (BuildCtx's graceful
// degradation, hcdserve's per-request deadlines) only works if the
// caller's context actually reaches the cancellable work — the par.*Err
// chunk boundaries, the fault-injection sites, the kernel entry points.
// PR 4 closed two such gaps by hand (rank+layout and index phases ran
// on a laundered Background); this check machine-enforces the property
// through the call graph.
//
// Two rules, both scoped to library code (cmd/ and examples/ are
// operator-facing entry points that legitimately mint root contexts):
//
//  1. laundering — a function that holds a context (a context.Context
//     or *http.Request parameter) must not pass context.Background() /
//     context.TODO() to a callee that transitively reaches cancellable
//     work. The nil-defaulting idiom (`if ctx == nil { ctx =
//     context.Background() }`) is untouched: it assigns, then passes
//     the variable.
//
//  2. dropped ctx — a function whose context parameter is never
//     mentioned in its body, while the function transitively reaches
//     cancellable work, has a containment gap: somewhere below it a
//     callee defaulted to Background and the caller's cancellation
//     can no longer stop the work.
//
// Soundness caveat: calls through interfaces and func values resolve
// conservatively (see callgraph.go); a Background passed through an
// interface method the graph cannot pin to one declaration is not
// flagged.
package lint

import (
	"go/ast"
	"go/types"
)

func ctxPropagationCheck() *Check {
	return &Check{
		Name: "ctx-propagation",
		Doc:  "functions holding a ctx must pass it to cancellable callees: no Background/TODO laundering, no unused ctx parameter above cancellable work",
		Run: func(ctx *Context) ([]Diagnostic, error) {
			cg := ctx.CallGraph()
			cancellable := cg.Cancellable()
			var diags []Diagnostic
			for _, n := range cg.Ordered {
				if hasPathSegment(n.Pkg.Path, "cmd") || hasPathSegment(n.Pkg.Path, "examples") {
					continue
				}
				ctxParams, reqParams := ctxishParams(n.Func)
				if len(ctxParams) == 0 && len(reqParams) == 0 {
					continue
				}
				diags = append(diags, launderingFindings(ctx, cg, cancellable, n)...)
				diags = append(diags, droppedCtxFindings(ctx, cg, cancellable, n, ctxParams)...)
			}
			return diags, nil
		},
	}
}

// ctxishParams splits fn's parameters into context.Context ones and
// *http.Request ones (whose Context() makes a ctx available).
func ctxishParams(fn *types.Func) (ctxs, reqs []*types.Var) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		switch {
		case isContextType(p.Type()):
			ctxs = append(ctxs, p)
		case isHTTPRequestPtr(p.Type()):
			reqs = append(reqs, p)
		}
	}
	return ctxs, reqs
}

// launderingFindings flags Background()/TODO() arguments in ctx
// positions of calls to cancellable-reaching callees inside n's body.
func launderingFindings(ctx *Context, cg *CallGraph, cancellable map[*CGNode]bool, n *CGNode) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := cg.NodeOf(calleeFunc(n.Pkg, call))
		if callee == nil || !cancellable[callee] {
			return true
		}
		sig, ok := callee.Func.Type().(*types.Signature)
		if !ok {
			return true
		}
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			if !isContextType(sig.Params().At(i).Type()) {
				continue
			}
			if name, bad := backgroundOrTODO(n.Pkg, call.Args[i]); bad {
				diags = append(diags, ctx.diag("ctx-propagation", call.Args[i].Pos(),
					"context.%s() passed to %s, which reaches cancellable %s; pass the caller's ctx so cancellation and deadlines propagate",
					name, funcLabel(cg, callee), funcLabel(cg, cg.SinkOf(callee))))
			}
		}
		return true
	})
	return diags
}

// droppedCtxFindings flags n when a ctx parameter is never referenced
// while n reaches cancellable work.
func droppedCtxFindings(ctx *Context, cg *CallGraph, cancellable map[*CGNode]bool, n *CGNode, ctxParams []*types.Var) []Diagnostic {
	if len(ctxParams) == 0 || !cancellable[n] {
		return nil
	}
	used := map[types.Object]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok {
			if obj := n.Pkg.Info.Uses[id]; obj != nil {
				used[obj] = true
			}
		}
		return true
	})
	var diags []Diagnostic
	for _, p := range ctxParams {
		if used[p] {
			continue
		}
		name := p.Name()
		if name == "" || name == "_" {
			name = "ctx"
		}
		diags = append(diags, ctx.diag("ctx-propagation", n.Decl.Name.Pos(),
			"%s's %s parameter is never used, but the function reaches cancellable %s%s; plumb the ctx down (or the work outlives its caller's cancellation)",
			n.Func.Name(), name, funcLabel(cg, cg.SinkOf(n)), viaLabel(cg, n)))
	}
	return diags
}

// backgroundOrTODO reports whether e is a direct context.Background()
// or context.TODO() call, returning which.
func backgroundOrTODO(pkg *Package, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name(), true
	}
	return "", false
}

// funcLabel renders a node as pkgbase.Func for messages.
func funcLabel(cg *CallGraph, n *CGNode) string {
	if n == nil {
		return "?"
	}
	return pkgBase(n.Pkg.Path) + "." + n.Func.Name()
}

// viaLabel names the first hop of the witness path when it is not the
// sink itself — "… (via coredecomp.PeelCtx)".
func viaLabel(cg *CallGraph, n *CGNode) string {
	hop := n.witness
	if hop == nil || hop == cg.SinkOf(n) {
		return ""
	}
	return " (via " + funcLabel(cg, hop) + ")"
}
