// API-surface extraction for the tag-parity check: a package's exported
// surface is flattened into a map of stable strings so two build-tag
// variants of the same package can be diffed symbol by symbol.
package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Surface flattens a package's exported API into name -> description
// strings. Entries exist for every exported package-level function,
// variable, constant and type; types additionally contribute one entry
// per exported method ("Type.Method") and per exported struct field
// ("Type.Field"). Descriptions qualify referenced packages by name only,
// so surfaces from independently loaded type universes compare equal
// when (and only when) the declarations match.
func Surface(pkg *types.Package) map[string]string {
	qual := func(p *types.Package) string {
		if p == pkg {
			return ""
		}
		return p.Name()
	}
	out := map[string]string{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch obj := obj.(type) {
		case *types.Func:
			// sigString already renders the leading "func(".
			out[name] = sigString(obj.Type().(*types.Signature), qual)
		case *types.Var:
			out[name] = "var " + types.TypeString(obj.Type(), qual)
		case *types.Const:
			out[name] = "const " + types.TypeString(obj.Type(), qual)
		case *types.TypeName:
			if obj.IsAlias() {
				out[name] = "alias " + types.TypeString(obj.Type(), qual)
				continue
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				continue
			}
			under := named.Underlying()
			out[name] = "type " + typeKind(under)
			if st, ok := under.(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					f := st.Field(i)
					if f.Exported() {
						out[name+"."+f.Name()] = "field " + types.TypeString(f.Type(), qual)
					}
				}
			}
			// The pointer method set covers both value and pointer
			// receivers, which is what callers of the package can reach.
			ms := types.NewMethodSet(types.NewPointer(named))
			for i := 0; i < ms.Len(); i++ {
				m := ms.At(i).Obj()
				if m.Exported() {
					out[name+"."+m.Name()] = "method " + sigString(m.Type().(*types.Signature), qual)
				}
			}
		}
	}
	return out
}

// sigString renders a signature by parameter and result types only:
// parameter names are not API, so "func(name string)" and
// "func(string)" must compare equal across build variants.
func sigString(sig *types.Signature, qual types.Qualifier) string {
	var b strings.Builder
	b.WriteString("func(")
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		t := types.TypeString(params.At(i).Type(), qual)
		if sig.Variadic() && i == params.Len()-1 {
			b.WriteString("..." + strings.TrimPrefix(t, "[]"))
		} else {
			b.WriteString(t)
		}
	}
	b.WriteString(")")
	results := sig.Results()
	switch results.Len() {
	case 0:
	case 1:
		b.WriteString(" " + types.TypeString(results.At(0).Type(), qual))
	default:
		b.WriteString(" (")
		for i := 0; i < results.Len(); i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(types.TypeString(results.At(i).Type(), qual))
		}
		b.WriteString(")")
	}
	return b.String()
}

// typeKind names a type's structural kind for surface entries: two
// variants must agree on whether an exported type is a struct, an
// interface, a function type, etc. (field and method entries carry the
// rest of the detail).
func typeKind(t types.Type) string {
	switch t := t.(type) {
	case *types.Struct:
		return "struct"
	case *types.Interface:
		return "interface"
	case *types.Signature:
		return "func"
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	case *types.Array:
		return "array"
	case *types.Chan:
		return "chan"
	case *types.Pointer:
		return "pointer"
	case *types.Basic:
		return t.Name()
	default:
		return t.String()
	}
}

// SurfaceDiff is one disagreement between two build variants of a
// package's exported surface.
type SurfaceDiff struct {
	// Symbol is the flattened surface key ("Name" or "Type.Member").
	Symbol string
	// A and B describe the symbol in each variant; empty means absent.
	A, B string
}

// DiffSurfaces compares two surfaces and returns the disagreements in
// symbol order. Empty means the variants are API-identical.
func DiffSurfaces(a, b map[string]string) []SurfaceDiff {
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	var diffs []SurfaceDiff
	for _, k := range sorted {
		if a[k] != b[k] {
			diffs = append(diffs, SurfaceDiff{Symbol: k, A: a[k], B: b[k]})
		}
	}
	return diffs
}

// symbolPos locates the declaration position of a flattened surface key
// inside pkg, for pointing diagnostics at real file:line coordinates.
// Returns token.NoPos for symbols the package does not declare.
func symbolPos(pkg *types.Package, symbol string) token.Pos {
	scope := pkg.Scope()
	name, member := symbol, ""
	for i := 0; i < len(symbol); i++ {
		if symbol[i] == '.' {
			name, member = symbol[:i], symbol[i+1:]
			break
		}
	}
	obj := scope.Lookup(name)
	if obj == nil {
		return token.NoPos
	}
	if member == "" {
		return obj.Pos()
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return obj.Pos()
	}
	if named, ok := tn.Type().(*types.Named); ok {
		if st, ok := named.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i).Name() == member {
					return st.Field(i).Pos()
				}
			}
		}
		ms := types.NewMethodSet(types.NewPointer(named))
		for i := 0; i < ms.Len(); i++ {
			if m := ms.At(i).Obj(); m.Name() == member {
				return m.Pos()
			}
		}
	}
	return obj.Pos()
}

// describeDiff renders one SurfaceDiff as a human-readable clause.
func describeDiff(d SurfaceDiff, aName, bName string) string {
	switch {
	case d.A == "":
		return fmt.Sprintf("%s: missing from the %s build (the %s build has %q)", d.Symbol, aName, bName, d.B)
	case d.B == "":
		return fmt.Sprintf("%s: missing from the %s build (the %s build has %q)", d.Symbol, bName, aName, d.A)
	default:
		return fmt.Sprintf("%s: %s build has %q, %s build has %q", d.Symbol, aName, d.A, bName, d.B)
	}
}
