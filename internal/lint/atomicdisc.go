// atomic-discipline: a memory location is either atomic or it is not.
// Mixing sync/atomic accesses with plain loads and stores of the same
// location is a data race the race detector only catches when the two
// sides actually collide in a test run; this check makes the mix a
// finding at compile-read time, module-wide.
//
// The check collects every location passed by address to a sync/atomic
// function — struct fields (`&s.count`), slice/array elements
// (`&vals[i]`, identified by their root variable) and plain variables —
// and flags every other access to the same location that is not itself
// an atomic operand. Composite-literal field initialisation (`T{count:
// 0}`) is exempt: the value is unpublished while it is being built.
// Phase-separated accesses that are provably race-free (a barrier
// between the atomic and plain epochs) carry an //hcdlint:allow with
// the separation argument.
//
// Separately, every struct field updated with a 64-bit sync/atomic
// function must be 64-bit aligned on 32-bit targets, where Go only
// guarantees 4-byte struct field alignment: the field's offset under
// GOARCH=386 layout must be a multiple of 8 (the allocator aligns the
// first word of an allocation, so offset-0 fields are safe). The typed
// wrappers (atomic.Int64, atomic.Uint64) carry their own alignment
// guarantee and are exempt — they are also the recommended fix.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// atomic64 marks the sync/atomic functions with 8-byte operands.
var atomic64 = map[string]bool{
	"LoadInt64": true, "StoreInt64": true, "AddInt64": true, "SwapInt64": true,
	"CompareAndSwapInt64": true, "AndInt64": true, "OrInt64": true,
	"LoadUint64": true, "StoreUint64": true, "AddUint64": true, "SwapUint64": true,
	"CompareAndSwapUint64": true, "AndUint64": true, "OrUint64": true,
}

// atomicTarget is one location accessed through sync/atomic.
type atomicTarget struct {
	obj      *types.Var // field var, or root var for elements/plain vars
	element  bool       // the atomic op addressed an element of obj, not obj itself
	fnName   string     // the sync/atomic function first seen on it
	firstPos token.Pos
}

func atomicDisciplineCheck() *Check {
	return &Check{
		Name: "atomic-discipline",
		Doc:  "locations accessed via sync/atomic must never be read or written plainly; 64-bit atomic struct fields must stay aligned on 32-bit targets",
		Run: func(ctx *Context) ([]Diagnostic, error) {
			targets := map[*types.Var]*atomicTarget{}
			operands := map[ast.Expr]bool{} // exprs that ARE atomic operands
			var diags []Diagnostic

			// Pass 1: collect atomic operands and their target locations;
			// check 64-bit field alignment as we go.
			walkFiles(ctx, func(pkg *Package, f *ast.File) {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeFunc(pkg, call)
					if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || len(call.Args) == 0 {
						return true
					}
					if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
						return true // typed-wrapper methods manage their own location
					}
					ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
					if !ok || ue.Op != token.AND {
						return true
					}
					lv := ast.Unparen(ue.X)
					operands[lv] = true
					obj, element := atomicLocation(pkg, lv)
					if obj == nil {
						return true
					}
					if _, seen := targets[obj]; !seen {
						targets[obj] = &atomicTarget{obj: obj, element: element, fnName: fn.Name(), firstPos: lv.Pos()}
					}
					if atomic64[fn.Name()] {
						if sel, ok := lv.(*ast.SelectorExpr); ok {
							diags = append(diags, checkAlign64(ctx, pkg, sel, fn.Name())...)
						}
					}
					return true
				})
			})

			// Pass 2: flag plain accesses to the collected locations.
			walkFiles(ctx, func(pkg *Package, f *ast.File) {
				compositeKeys := map[*ast.Ident]bool{}
				ast.Inspect(f, func(n ast.Node) bool {
					if cl, ok := n.(*ast.CompositeLit); ok {
						for _, el := range cl.Elts {
							if kv, ok := el.(*ast.KeyValueExpr); ok {
								if id, ok := kv.Key.(*ast.Ident); ok {
									compositeKeys[id] = true
								}
							}
						}
					}
					return true
				})
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.SelectorExpr:
						obj, _ := pkg.Info.Uses[n.Sel].(*types.Var)
						t := targets[obj]
						if t == nil || !obj.IsField() || operands[n] || compositeKeys[n.Sel] {
							return true
						}
						diags = append(diags, ctx.diag("atomic-discipline", n.Pos(),
							"plain access to field %s, which is updated with atomic.%s (first at %s); every access must go through sync/atomic (or migrate the field to a typed atomic wrapper)",
							obj.Name(), t.fnName, ctx.relPos(t.firstPos)))
					case *ast.IndexExpr:
						id := rootIdent(n.X)
						if id == nil {
							return true
						}
						obj, _ := pkg.Info.ObjectOf(id).(*types.Var)
						t := targets[obj]
						if t == nil || !t.element || operands[n] {
							return true
						}
						diags = append(diags, ctx.diag("atomic-discipline", n.Pos(),
							"plain element access of %q, whose elements are updated with atomic.%s (first at %s); mixed plain/atomic element access races unless the epochs are separated by a barrier",
							obj.Name(), t.fnName, ctx.relPos(t.firstPos)))
					}
					return true
				})
			})
			return diags, nil
		},
	}
}

// atomicLocation resolves the lvalue under an atomic &-operand to its
// identity: (field var, false) for s.f, (root var, true) for a[i],
// (var, false) for a plain identifier.
func atomicLocation(pkg *Package, lv ast.Expr) (*types.Var, bool) {
	switch lv := lv.(type) {
	case *ast.SelectorExpr:
		if v, ok := pkg.Info.Uses[lv.Sel].(*types.Var); ok && v.IsField() {
			return v, false
		}
	case *ast.IndexExpr:
		if id := rootIdent(lv.X); id != nil {
			if v, ok := pkg.Info.ObjectOf(id).(*types.Var); ok {
				return v, true
			}
		}
	case *ast.Ident:
		if v, ok := pkg.Info.ObjectOf(lv).(*types.Var); ok {
			return v, false
		}
	}
	return nil, false
}

// sizes386 is the layout of the strictest supported 32-bit target.
var sizes386 = types.SizesFor("gc", "386")

// checkAlign64 verifies that the field in sel sits at a 64-bit-aligned
// offset under 32-bit struct layout. The selection's full index path is
// walked so fields of embedded structs accumulate their outer offsets.
func checkAlign64(ctx *Context, pkg *Package, sel *ast.SelectorExpr, fnName string) []Diagnostic {
	s := pkg.Info.Selections[sel]
	if s == nil {
		return nil
	}
	t := s.Recv()
	var off int64
	for _, idx := range s.Index() {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			// An indirection re-anchors at an allocation start: the
			// pointed-to struct's own offsets are what matter.
			t = p.Elem()
			off = 0
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return nil
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		off += sizes386.Offsetsof(fields)[idx]
		t = st.Field(idx).Type()
	}
	if off%8 == 0 {
		return nil
	}
	return []Diagnostic{ctx.diag("atomic-discipline", sel.Sel.Pos(),
		"atomic.%s on field %s at 32-bit offset %d: 64-bit atomics require 8-byte alignment, which GOARCH=386 only gives fields at offsets divisible by 8; move the field first in the struct or use atomic.%s",
		fnName, sel.Sel.Name, off, typedWrapperFor(fnName))}
}

// typedWrapperFor names the alignment-safe typed replacement.
func typedWrapperFor(fnName string) string {
	if strings.HasSuffix(fnName, "Uint64") {
		return "Uint64"
	}
	return "Int64"
}
