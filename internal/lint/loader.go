// Loader: parses and type-checks the module's packages from source using
// only the standard library (go/parser + go/types + go/importer — no
// golang.org/x/tools dependency).
//
// Module-internal imports ("hcd/...") are resolved recursively from the
// source tree, honouring build constraints through go/build, so the same
// loader can materialise different build-tag variants of one package
// (the lever the tag-parity check pulls). Standard-library imports are
// resolved through compiled export data located with one `go list
// -export -deps` invocation per loader family; the gc importer consumes
// the export files directly, so stdlib sources are never re-type-checked.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package (non-test files only —
// hcdlint polices library code; test files are exempt by design).
type Package struct {
	// Path is the import path ("hcd/internal/core").
	Path string
	// Dir is the absolute directory the files came from.
	Dir string
	// Files are the parsed non-test files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the use/def/type/selection maps for Files.
	Info *types.Info
}

// Loader loads packages of one module under one build-tag set. Loaders
// for other tag sets of the same module share a family: one FileSet,
// one stdlib importer, and a cross-tag-set package cache, so linting
// three tag flavours re-checks only the tag-sensitive packages (and
// their dependents) instead of re-loading the module from scratch per
// flavour.
type Loader struct {
	// Dir is the module root (the directory holding go.mod).
	Dir string
	// Module is the module path from go.mod.
	Module string
	// Tags are the build tags this loader applies.
	Tags []string
	// Fset positions every file any loader of the family parsed.
	Fset *token.FileSet

	fam     *family
	pkgs    map[string]*Package
	loading map[string]bool // import-cycle guard
}

// family is the state shared by a loader and its tag-set Variants.
// Sharing the FileSet and the stdlib importer is what makes cached
// packages interchangeable across variants: positions stay resolvable
// and stdlib types keep pointer identity. Not safe for concurrent use,
// like the loaders themselves (checks run sequentially).
type family struct {
	exports map[string]string // stdlib import path -> export data file
	fset    *token.FileSet
	std     types.Importer
	// cache maps an import path to its most recently checked build. A
	// variant reuses the entry when its tag set selects the same file
	// list AND every module-internal dependency resolved to the same
	// *Package — so tag-sensitive packages and everything above them
	// re-check, everything else is shared.
	cache        map[string]*cacheEntry
	hits, misses int
}

// cacheEntry records what a cached package was built from.
type cacheEntry struct {
	files []string   // sorted file names the tag set selected
	deps  []*Package // module-internal deps, in bp.Imports order
	pkg   *Package
}

// CacheStats reports cross-tag-set package cache hits and misses for
// this loader's family (misses include every first load).
func (l *Loader) CacheStats() (hits, misses int) {
	return l.fam.hits, l.fam.misses
}

// NewLoader creates a loader rooted at the module containing dir,
// applying the given build tags. It runs `go list -export -deps` once to
// locate stdlib export data; the go toolchain must be on PATH (hcdlint
// itself is run with `go run`, so it always is).
func NewLoader(dir string, tags []string) (*Loader, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	exports, err := stdExports(root)
	if err != nil {
		return nil, err
	}
	fam := &family{
		exports: exports,
		fset:    token.NewFileSet(),
		cache:   map[string]*cacheEntry{},
	}
	fam.std = importer.ForCompiler(fam.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := fam.exports[path]
		if !ok {
			// A stdlib package outside the module's dependency closure
			// (possible for testdata fixtures): locate it on demand.
			ef, err := exportFile(root, path)
			if err != nil {
				return nil, err
			}
			fam.exports[path] = ef
			f = ef
		}
		return os.Open(f)
	})
	return newLoader(root, module, tags, fam), nil
}

// Variant returns a fresh loader for the same module under a different
// tag set, sharing the family (stdlib export data, FileSet, and the
// cross-tag-set package cache).
func (l *Loader) Variant(tags []string) *Loader {
	return newLoader(l.Dir, l.Module, tags, l.fam)
}

func newLoader(root, module string, tags []string, fam *family) *Loader {
	return &Loader{
		Dir:     root,
		Module:  module,
		Tags:    tags,
		Fset:    fam.fset,
		fam:     fam,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// stdExports maps every stdlib package in the module's dependency
// closure to its compiled export-data file.
func stdExports(root string) (map[string]string, error) {
	cmd := exec.Command("go", "list", "-export", "-e", "-deps",
		"-json=ImportPath,Export,Standard", "./...")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return nil, fmt.Errorf("lint: go list -export failed: %v\n%s", err, ee.Stderr)
		}
		return nil, fmt.Errorf("lint: go list -export failed: %v", err)
	}
	exports := map[string]string{}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p struct {
			ImportPath string
			Export     string
			Standard   bool
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: parsing go list output: %v", err)
		}
		if p.Standard && p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// exportFile locates export data for a single package via go list.
func exportFile(root, path string) (string, error) {
	cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("lint: no export data for %q: %v", path, err)
	}
	f := strings.TrimSpace(string(out))
	if f == "" {
		return "", fmt.Errorf("lint: no export data for %q", path)
	}
	return f, nil
}

// Import implements types.Importer: module-internal paths load from
// source (recursively, cached), everything else from stdlib export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.fam.std.Import(path)
}

// pkgDir maps a module-internal import path to its directory.
func (l *Loader) pkgDir(path string) string {
	if path == l.Module {
		return l.Dir
	}
	return filepath.Join(l.Dir, filepath.FromSlash(strings.TrimPrefix(path, l.Module+"/")))
}

// LoadDir loads the package in an arbitrary directory inside the module
// tree (including testdata directories the go tool itself ignores).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.Dir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.Dir)
	}
	path := l.Module
	if rel != "." {
		path = l.Module + "/" + filepath.ToSlash(rel)
	}
	return l.load(path)
}

// Load loads (or returns the cached) package for a module-internal
// import path.
func (l *Loader) Load(path string) (*Package, error) { return l.load(path) }

func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.pkgDir(path)
	bctx := build.Default
	bctx.BuildTags = append([]string(nil), l.Tags...)
	bp, err := bctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %v", dir, err)
	}
	sort.Strings(bp.GoFiles)

	// Load module-internal dependencies first (bp.Imports is sorted and
	// deduplicated), so the family-cache key — file list plus dependency
	// identity — is known before deciding whether to re-check.
	var deps []*Package
	for _, imp := range bp.Imports {
		if imp != l.Module && !strings.HasPrefix(imp, l.Module+"/") {
			continue
		}
		dp, err := l.load(imp)
		if err != nil {
			return nil, err
		}
		deps = append(deps, dp)
	}
	if e := l.fam.cache[path]; e != nil && sameFiles(e.files, bp.GoFiles) && sameDeps(e.deps, deps) {
		l.fam.hits++
		l.pkgs[path] = e.pkg
		return e.pkg, nil
	}
	l.fam.misses++

	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tp, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tp, Info: info}
	l.pkgs[path] = p
	l.fam.cache[path] = &cacheEntry{files: bp.GoFiles, deps: deps, pkg: p}
	return p, nil
}

func sameFiles(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameDeps(a, b []*Package) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ModulePackages enumerates and loads every buildable package under the
// module root, skipping testdata, vendor, hidden and underscore
// directories. Returned in import-path order.
func (l *Loader) ModulePackages() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.Dir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		bctx := build.Default
		bctx.BuildTags = append([]string(nil), l.Tags...)
		bp, err := bctx.ImportDir(dir, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, fmt.Errorf("lint: %s: %v", dir, err)
		}
		if len(bp.GoFiles) == 0 {
			continue
		}
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}
