// Package query answers local k-core queries on a built HCD, the
// application of the ShellStruct/CL-Tree structures cited in §VII: given a
// vertex v and an integer k <= c(v), return the (unique) k-core containing
// v in time linear in the output, after O(|T| log |T|) preprocessing.
//
// The key property (§II-B): the k-core containing v is the original core
// of the deepest ancestor of tid(v) whose level is at least k. If any
// other coreness-k' vertex (k <= k' < that ancestor's level) belonged to
// v's k-core, its own tree node would be an ancestor of tid(v) at level
// k', contradicting depth-minimality — so ancestor jumping is exact, and
// binary lifting finds the node in O(log height).
package query

import (
	"hcd/internal/hierarchy"
)

// Index supports local k-core queries over one HCD.
type Index struct {
	h *hierarchy.HCD
	// up[j][i] = the 2^j-th ancestor of node i (Nil beyond the root).
	up [][]hierarchy.NodeID
}

// NewIndex preprocesses the hierarchy for ancestor jumps.
func NewIndex(h *hierarchy.HCD) *Index {
	nn := h.NumNodes()
	ix := &Index{h: h}
	if nn == 0 {
		return ix
	}
	depth := h.Depth()
	maxDepth := int32(0)
	for _, d := range depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	levels := 1
	for (1 << levels) <= int(maxDepth) {
		levels++
	}
	ix.up = make([][]hierarchy.NodeID, levels)
	ix.up[0] = make([]hierarchy.NodeID, nn)
	copy(ix.up[0], h.Parent)
	for j := 1; j < levels; j++ {
		ix.up[j] = make([]hierarchy.NodeID, nn)
		for i := 0; i < nn; i++ {
			mid := ix.up[j-1][i]
			if mid == hierarchy.Nil {
				ix.up[j][i] = hierarchy.Nil
			} else {
				ix.up[j][i] = ix.up[j-1][mid]
			}
		}
	}
	return ix
}

// Bytes returns the binary-lifting table's storage footprint in bytes
// (⌈log₂ depth⌉ levels of 4 bytes per node, plus slice headers),
// computed from lengths. The hierarchy itself is owned by the caller
// and excluded.
func (ix *Index) Bytes() int64 {
	const sliceHeader = 24 // ptr + len + cap on 64-bit
	b := int64(len(ix.up)) * sliceHeader
	for _, level := range ix.up {
		b += int64(len(level)) * 4
	}
	return b
}

// NodeAt returns the tree node whose original core is the k-core
// containing v: the deepest ancestor of tid(v) with level >= k. It returns
// Nil when k > c(v) (no k-core contains v) or k < 0.
func (ix *Index) NodeAt(v int32, k int32) hierarchy.NodeID {
	if k < 0 {
		return hierarchy.Nil
	}
	cur := ix.h.TID[v]
	if ix.h.K[cur] < k {
		return hierarchy.Nil // k exceeds v's coreness
	}
	// Jump as high as possible while the ancestor's level stays >= k.
	for j := len(ix.up) - 1; j >= 0; j-- {
		if a := ix.up[j][cur]; a != hierarchy.Nil && ix.h.K[a] >= k {
			cur = a
		}
	}
	return cur
}

// KCore materialises the k-core containing v (nil when none exists).
func (ix *Index) KCore(v int32, k int32) []int32 {
	node := ix.NodeAt(v, k)
	if node == hierarchy.Nil {
		return nil
	}
	return ix.h.CoreVertices(node)
}

// SameKCore reports whether u and v lie in the same k-core.
func (ix *Index) SameKCore(u, v int32, k int32) bool {
	a := ix.NodeAt(u, k)
	return a != hierarchy.Nil && a == ix.NodeAt(v, k)
}

// CorenessOf returns the coreness of v as recorded in the hierarchy
// (the level of its tree node).
func (ix *Index) CorenessOf(v int32) int32 { return ix.h.K[ix.h.TID[v]] }
