package query

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hcd/internal/coredecomp"
	"hcd/internal/gen"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
)

// bruteKCore returns the component of v in G[c >= k], or nil if c(v) < k.
func bruteKCore(g *graph.Graph, core []int32, v int32, k int32) []int32 {
	if core[v] < k {
		return nil
	}
	seen := map[int32]bool{v: true}
	queue := []int32{v}
	var out []int32
	for len(queue) > 0 {
		x := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		out = append(out, x)
		for _, u := range g.Neighbors(x) {
			if core[u] >= k && !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return out
}

func sortedCopy(s []int32) []int32 {
	out := append([]int32(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func buildIndex(g *graph.Graph) (*Index, []int32) {
	core := coredecomp.Serial(g)
	h := hierarchy.BruteForce(g, core)
	return NewIndex(h), core
}

func TestKCoreMatchesBruteForce(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Onion(6, 10, 2, 2, 3, 1),
		gen.ErdosRenyi(120, 500, 2),
		gen.BarabasiAlbert(100, 4, 3),
	}
	rng := rand.New(rand.NewSource(4))
	for gi, g := range graphs {
		ix, core := buildIndex(g)
		for trial := 0; trial < 200; trial++ {
			v := int32(rng.Intn(g.NumVertices()))
			k := int32(rng.Intn(int(coredecomp.KMax(core)) + 2))
			want := bruteKCore(g, core, v, k)
			got := ix.KCore(v, k)
			if want == nil {
				if got != nil {
					t.Fatalf("graph %d: KCore(%d,%d) = %d verts, want nil", gi, v, k, len(got))
				}
				continue
			}
			gs, ws := sortedCopy(got), sortedCopy(want)
			if len(gs) != len(ws) {
				t.Fatalf("graph %d: KCore(%d,%d) has %d verts, want %d", gi, v, k, len(gs), len(ws))
			}
			for i := range gs {
				if gs[i] != ws[i] {
					t.Fatalf("graph %d: KCore(%d,%d) differs at %d", gi, v, k, i)
				}
			}
		}
	}
}

func TestKCoreAtZeroIsComponent(t *testing.T) {
	g := graph.MustFromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	ix, _ := buildIndex(g)
	if got := sortedCopy(ix.KCore(0, 0)); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("0-core of vertex 0 = %v, want its component", got)
	}
	if got := ix.KCore(4, 0); len(got) != 1 || got[0] != 4 {
		t.Errorf("0-core of isolated vertex = %v", got)
	}
	if ix.KCore(4, 1) != nil {
		t.Error("isolated vertex has no 1-core")
	}
	if ix.KCore(0, -1) != nil {
		t.Error("negative k must return nil")
	}
}

func TestSameKCore(t *testing.T) {
	// Two K4s joined via a coreness-2 bridge.
	g := graph.MustFromEdges(9, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
		{U: 4, V: 5}, {U: 4, V: 6}, {U: 4, V: 7}, {U: 5, V: 6}, {U: 5, V: 7}, {U: 6, V: 7},
		{U: 3, V: 8}, {U: 8, V: 4},
	})
	ix, _ := buildIndex(g)
	if !ix.SameKCore(0, 3, 3) {
		t.Error("0 and 3 share the first K4's 3-core")
	}
	if ix.SameKCore(0, 4, 3) {
		t.Error("0 and 4 are in different 3-cores")
	}
	if !ix.SameKCore(0, 4, 2) {
		t.Error("0 and 4 share the 2-core")
	}
	if ix.SameKCore(0, 8, 3) {
		t.Error("vertex 8 has no 3-core")
	}
	if ix.CorenessOf(8) != 2 || ix.CorenessOf(0) != 3 {
		t.Error("CorenessOf wrong")
	}
}

func TestNodeAtProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint16) bool {
		n := int(nRaw%100) + 1
		m := int(mRaw % 500)
		rng := rand.New(rand.NewSource(seed))
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
		}
		g := graph.MustFromEdges(n, edges)
		core := coredecomp.Serial(g)
		h := hierarchy.BruteForce(g, core)
		ix := NewIndex(h)
		for trial := 0; trial < 20; trial++ {
			v := int32(rng.Intn(n))
			k := int32(rng.Intn(int(coredecomp.KMax(core)) + 2))
			node := ix.NodeAt(v, k)
			if k > core[v] {
				if node != hierarchy.Nil {
					return false
				}
				continue
			}
			// The node must be an ancestor of tid(v) with level >= k whose
			// parent (if any) has level < k.
			if node == hierarchy.Nil || h.K[node] < k {
				return false
			}
			if p := h.Parent[node]; p != hierarchy.Nil && h.K[p] >= k {
				return false
			}
			// And it must be an ancestor of tid(v).
			cur := h.TID[v]
			found := false
			for cur != hierarchy.Nil {
				if cur == node {
					found = true
					break
				}
				cur = h.Parent[cur]
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := NewIndex(&hierarchy.HCD{})
	if ix.up != nil && len(ix.up) != 0 {
		t.Error("empty index should have no lifting tables")
	}
}
