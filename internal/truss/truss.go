// Package truss implements the §VI extension "other cohesive subgraph
// models": k-truss decomposition and a truss hierarchy built with the same
// union-find-with-pivot paradigm as PHCD, demonstrating that the paper's
// framework generalises beyond k-core.
//
// A k-truss is a maximal subgraph in which every edge participates in at
// least k-2 triangles; every edge has a trussness value analogous to
// coreness. Decompose computes edge trussness by support peeling (the
// standard O(m^1.5) algorithm); BuildHierarchy then assembles the forest
// of k-truss components bottom-up: edge-shells are added in descending
// trussness and connectivity is maintained in a union-find over edges
// whose roots are the components' pivots — a direct transplant of
// Algorithm 2 from vertices to edges.
package truss

import (
	"sort"

	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/unionfind"
)

// EdgeIndex gives every undirected edge a dense id and maps both CSR
// directions to it.
type EdgeIndex struct {
	// U, V are the endpoints of edge id e, with U[e] < V[e].
	U, V []int32
	// id[d] is the edge id of the d-th directed CSR slot of the graph.
	id      []int32
	offsets []int64 // CSR offsets, mirroring the graph's
	g       *graph.Graph
}

// NewEdgeIndex enumerates g's undirected edges in (u, v) lexicographic
// order and builds the directed-slot lookup.
func NewEdgeIndex(g *graph.Graph) *EdgeIndex {
	m := int(g.NumEdges())
	n := g.NumVertices()
	ix := &EdgeIndex{
		U:       make([]int32, 0, m),
		V:       make([]int32, 0, m),
		id:      make([]int32, 2*m),
		offsets: make([]int64, n+1),
		g:       g,
	}
	for v := 0; v < n; v++ {
		ix.offsets[v+1] = ix.offsets[v] + int64(g.Degree(int32(v)))
	}
	// First pass: assign ids to (u < v) slots in CSR order.
	slot := 0
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				ix.id[slot] = int32(len(ix.U))
				ix.U = append(ix.U, u)
				ix.V = append(ix.V, v)
			}
			slot++
		}
	}
	// Second pass: fill the v > u direction by locating u in v's list.
	slot = 0
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		for _, v := range g.Neighbors(u) {
			if u > v {
				ix.id[slot] = ix.Lookup(v, u)
			}
			slot++
		}
	}
	return ix
}

// Lookup returns the edge id of (u, v) with u < v, or -1 if absent.
// O(log d(u)).
func (ix *EdgeIndex) Lookup(u, v int32) int32 {
	list := ix.g.Neighbors(u)
	i := sort.Search(len(list), func(i int) bool { return list[i] >= v })
	if i == len(list) || list[i] != v {
		return -1
	}
	return ix.slotID(u, i)
}

// slotID returns the edge id stored for the i-th slot of u's list.
func (ix *EdgeIndex) slotID(u int32, i int) int32 {
	return ix.id[ix.offsets[u]+int64(i)]
}

func (ix *EdgeIndex) offset(u int32) int64 { return ix.offsets[u] }

// Decompose computes the trussness of every edge by support peeling.
// Returns the edge index and the trussness array (indexed by edge id);
// trussness is at least 2 for every edge.
func Decompose(g *graph.Graph) (*EdgeIndex, []int32) {
	ix := NewEdgeIndex(g)
	m := len(ix.U)
	support := make([]int32, m)
	// Support counting: orient by degree, enumerate each triangle once,
	// bump all three edges.
	n := g.NumVertices()
	mark := make([]int32, n)
	markSlot := make([]int32, n) // edge id of (v, w) for marked w
	for v := int32(0); v < int32(n); v++ {
		for i, w := range g.Neighbors(v) {
			mark[w] = v + 1
			markSlot[w] = ix.id[ix.offset(v)+int64(i)]
		}
		dv := g.Degree(v)
		for i, u := range g.Neighbors(v) {
			du := g.Degree(u)
			if du < dv || (du == dv && u < v) {
				euv := ix.id[ix.offset(v)+int64(i)]
				for j, w := range g.Neighbors(u) {
					// Count triangle (v, u, w) once: require w "after" u in
					// the same degree order and w marked as v's neighbor.
					dw := g.Degree(w)
					if mark[w] == v+1 && (dw < du || (dw == du && w < u)) {
						euw := markSlot[w]
						evw := ix.id[ix.offset(u)+int64(j)]
						support[euv]++
						support[euw]++
						support[evw]++
					}
				}
			}
		}
	}
	// Peel edges in ascending support (bin queue with lazy updates).
	truss := make([]int32, m)
	maxSup := int32(0)
	for _, s := range support {
		if s > maxSup {
			maxSup = s
		}
	}
	buckets := make([][]int32, maxSup+1)
	for e := 0; e < m; e++ {
		buckets[support[e]] = append(buckets[support[e]], int32(e))
	}
	removed := make([]bool, m)
	cur := int32(0) // monotone: decrements clamp at cur, so nothing ever drops below
	for processed := 0; processed < m; {
		for cur <= maxSup && len(buckets[cur]) == 0 {
			cur++
		}
		b := buckets[cur]
		e := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[e] || support[e] != cur {
			continue
		}
		removed[e] = true
		truss[e] = cur + 2
		processed++
		// Decrement the supports of the other two edges of each surviving
		// triangle through e = (u, v).
		u, v := ix.U[e], ix.V[e]
		if g.Degree(u) > g.Degree(v) {
			u, v = v, u
		}
		for i, w := range g.Neighbors(u) {
			if w == v {
				continue
			}
			euw := ix.id[ix.offset(u)+int64(i)]
			if removed[euw] {
				continue
			}
			evw := ix.Lookup(min(v, w), max(v, w))
			if evw < 0 || removed[evw] {
				continue
			}
			for _, other := range []int32{euw, evw} {
				if support[other] > cur {
					support[other]--
					buckets[support[other]] = append(buckets[support[other]], other)
				}
			}
		}
	}
	return ix, truss
}

// BuildHierarchy assembles the truss hierarchy with the PHCD paradigm:
// edges are added in descending trussness; connectivity between edges
// sharing an endpoint is maintained in a union-find whose roots are the
// components' pivots; one tree node is created per pivot and parents are
// found exactly as in Algorithm 2 Step 4. The returned forest reuses the
// hierarchy.HCD container with edge ids in place of vertex ids.
func BuildHierarchy(g *graph.Graph, ix *EdgeIndex, truss []int32) *hierarchy.HCD {
	m := len(truss)
	h := &hierarchy.HCD{TID: make([]hierarchy.NodeID, m)}
	for i := range h.TID {
		h.TID[i] = hierarchy.Nil
	}
	if m == 0 {
		return h
	}
	kmax := int32(2)
	for _, t := range truss {
		if t > kmax {
			kmax = t
		}
	}
	// Edge rank: (trussness, id) — the edge analogue of Definition 4.
	order := make([]int32, m)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := order[a], order[b]
		if truss[ea] != truss[eb] {
			return truss[ea] < truss[eb]
		}
		return ea < eb
	})
	rank := make([]int32, m)
	for r, e := range order {
		rank[e] = int32(r)
	}
	shells := make([][]int32, kmax+1)
	for e := 0; e < m; e++ {
		shells[truss[e]] = append(shells[truss[e]], int32(e))
	}
	uf := unionfind.NewConcurrent(m, rank)

	newNode := func(k int32) hierarchy.NodeID {
		id := hierarchy.NodeID(len(h.K))
		h.K = append(h.K, k)
		h.Parent = append(h.Parent, hierarchy.Nil)
		h.Children = append(h.Children, nil)
		h.Vertices = append(h.Vertices, nil)
		return id
	}
	inKpc := make([]bool, m)
	adjEdges := func(e int32, fn func(o int32)) {
		for _, end := range []int32{ix.U[e], ix.V[e]} {
			off := ix.offset(end)
			for i := range g.Neighbors(end) {
				if o := ix.id[off+int64(i)]; o != e {
					fn(o)
				}
			}
		}
	}
	for k := kmax; k >= 2; k-- {
		shell := shells[k]
		if len(shell) == 0 {
			continue
		}
		// Step 1: pivots of deeper truss components adjacent to the shell.
		var kpc []int32
		for _, e := range shell {
			adjEdges(e, func(o int32) {
				if truss[o] > k {
					pvt := uf.Find(o)
					if !inKpc[pvt] {
						inKpc[pvt] = true
						kpc = append(kpc, pvt)
					}
				}
			})
		}
		// Step 2: connect the shell.
		for _, e := range shell {
			adjEdges(e, func(o int32) {
				if truss[o] > k || (truss[o] == k && o > e) {
					uf.Union(e, o)
				}
			})
		}
		// Step 3: nodes per pivot.
		for _, e := range shell {
			if uf.Find(e) == e {
				h.TID[e] = newNode(k)
			}
		}
		for _, e := range shell {
			pvt := uf.Find(e)
			id := h.TID[pvt]
			h.TID[e] = id
			h.Vertices[id] = append(h.Vertices[id], e)
		}
		// Step 4: parents.
		for _, v := range kpc {
			inKpc[v] = false
			ch := h.TID[v]
			pa := h.TID[uf.Find(v)]
			h.Parent[ch] = pa
			h.Children[pa] = append(h.Children[pa], ch)
		}
	}
	return h
}
