package truss

import (
	"math/rand"
	"testing"

	"hcd/internal/gen"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
)

// bruteTruss computes edge trussness straight from the definition:
// for ascending k, repeatedly delete edges with fewer than k-2 triangles.
func bruteTruss(g *graph.Graph, ix *EdgeIndex) []int32 {
	m := len(ix.U)
	truss := make([]int32, m)
	alive := make([]bool, m)
	for e := range alive {
		alive[e] = true
		truss[e] = 2
	}
	countSupport := func(e int32) int {
		u, v := ix.U[e], ix.V[e]
		sup := 0
		for _, w := range g.Neighbors(u) {
			if w == v {
				continue
			}
			euw := ix.Lookup(min(u, w), max(u, w))
			evw := ix.Lookup(min(v, w), max(v, w))
			if evw >= 0 && alive[euw] && alive[evw] {
				sup++
			}
		}
		return sup
	}
	for k := int32(3); ; k++ {
		// Remove edges with support < k-2 until stable.
		for {
			removedAny := false
			for e := int32(0); e < int32(m); e++ {
				if alive[e] && countSupport(e) < int(k-2) {
					alive[e] = false
					removedAny = true
				}
			}
			if !removedAny {
				break
			}
		}
		anyAlive := false
		for e := int32(0); e < int32(m); e++ {
			if alive[e] {
				truss[e] = k
				anyAlive = true
			}
		}
		if !anyAlive {
			return truss
		}
	}
}

func randomGraph(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
	}
	return graph.MustFromEdges(n, edges)
}

func TestEdgeIndexRoundTrip(t *testing.T) {
	g := randomGraph(50, 200, 1)
	ix := NewEdgeIndex(g)
	if int64(len(ix.U)) != g.NumEdges() {
		t.Fatalf("edge count %d != %d", len(ix.U), g.NumEdges())
	}
	for e := int32(0); e < int32(len(ix.U)); e++ {
		if ix.U[e] >= ix.V[e] {
			t.Fatalf("edge %d endpoints not ordered", e)
		}
		if got := ix.Lookup(ix.U[e], ix.V[e]); got != e {
			t.Fatalf("Lookup(%d,%d) = %d, want %d", ix.U[e], ix.V[e], got, e)
		}
	}
	if ix.Lookup(0, 0) != -1 && g.HasEdge(0, 0) {
		t.Error("self lookup")
	}
}

func TestDecomposeKnownGraphs(t *testing.T) {
	// K4: every edge is in 2 triangles -> trussness 4.
	var edges []graph.Edge
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
		}
	}
	g := graph.MustFromEdges(4, edges)
	_, tr := Decompose(g)
	for e, k := range tr {
		if k != 4 {
			t.Errorf("K4 edge %d trussness %d, want 4", e, k)
		}
	}
	// Path: no triangles -> trussness 2.
	p := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	_, tr2 := Decompose(p)
	for e, k := range tr2 {
		if k != 2 {
			t.Errorf("path edge %d trussness %d, want 2", e, k)
		}
	}
}

func TestDecomposeMatchesBruteForce(t *testing.T) {
	for trial := int64(0); trial < 15; trial++ {
		g := randomGraph(25, 90, trial)
		ix, got := Decompose(g)
		want := bruteTruss(g, ix)
		for e := range got {
			if got[e] != want[e] {
				t.Fatalf("trial %d edge %d (%d,%d): trussness %d, want %d",
					trial, e, ix.U[e], ix.V[e], got[e], want[e])
			}
		}
	}
}

// bruteTrussHierarchy mirrors hierarchy.BruteForce over the edge graph:
// components of {e : truss(e) >= k} connected via shared endpoints.
func bruteTrussHierarchy(g *graph.Graph, ix *EdgeIndex, truss []int32) *hierarchy.HCD {
	m := len(truss)
	h := &hierarchy.HCD{TID: make([]hierarchy.NodeID, m)}
	for i := range h.TID {
		h.TID[i] = hierarchy.Nil
	}
	kmax := int32(2)
	for _, k := range truss {
		if k > kmax {
			kmax = k
		}
	}
	deepest := make([]hierarchy.NodeID, m)
	for i := range deepest {
		deepest[i] = hierarchy.Nil
	}
	adj := func(e int32, fn func(o int32)) {
		for _, end := range []int32{ix.U[e], ix.V[e]} {
			for i := range g.Neighbors(end) {
				if o := ix.id[ix.offset(end)+int64(i)]; o != e {
					fn(o)
				}
			}
		}
	}
	for k := kmax; k >= 2; k-- {
		comp := make([]int32, m)
		for i := range comp {
			comp[i] = -1
		}
		var compEdges [][]int32
		for e := int32(0); e < int32(m); e++ {
			if truss[e] < k || comp[e] >= 0 {
				continue
			}
			id := int32(len(compEdges))
			queue := []int32{e}
			comp[e] = id
			var list []int32
			for len(queue) > 0 {
				x := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				list = append(list, x)
				adj(x, func(o int32) {
					if truss[o] >= k && comp[o] < 0 {
						comp[o] = id
						queue = append(queue, o)
					}
				})
			}
			compEdges = append(compEdges, list)
		}
		for _, list := range compEdges {
			var shell []int32
			for _, e := range list {
				if truss[e] == k {
					shell = append(shell, e)
				}
			}
			if len(shell) == 0 {
				continue
			}
			id := hierarchy.NodeID(len(h.K))
			h.K = append(h.K, k)
			h.Parent = append(h.Parent, hierarchy.Nil)
			h.Children = append(h.Children, nil)
			h.Vertices = append(h.Vertices, shell)
			for _, e := range shell {
				h.TID[e] = id
			}
			seen := map[hierarchy.NodeID]bool{}
			for _, e := range list {
				if d := deepest[e]; d != hierarchy.Nil && d != id && !seen[d] && h.Parent[d] == hierarchy.Nil {
					seen[d] = true
					h.Parent[d] = id
					h.Children[id] = append(h.Children[id], d)
				}
			}
			for _, e := range list {
				deepest[e] = id
			}
		}
	}
	return h
}

func TestBuildHierarchyMatchesBruteForce(t *testing.T) {
	graphs := []*graph.Graph{
		randomGraph(30, 120, 3),
		randomGraph(40, 80, 4),
		gen.PlantedPartition(3, 15, 0.5, 0.02, 5),
		gen.Onion(3, 10, 3, 2, 2, 6),
	}
	for gi, g := range graphs {
		ix, tr := Decompose(g)
		got := BuildHierarchy(g, ix, tr)
		want := bruteTrussHierarchy(g, ix, tr)
		if !hierarchy.Equal(got, want) {
			t.Errorf("graph %d: truss hierarchy differs (|T| got %d want %d)",
				gi, got.NumNodes(), want.NumNodes())
		}
	}
}

func TestBuildHierarchyNestsByTrussness(t *testing.T) {
	g := gen.PlantedPartition(2, 20, 0.6, 0.01, 7)
	ix, tr := Decompose(g)
	h := BuildHierarchy(g, ix, tr)
	for i := 0; i < h.NumNodes(); i++ {
		for _, e := range h.Vertices[i] {
			if tr[e] != h.K[i] {
				t.Fatalf("node %d holds edge of trussness %d, node level %d", i, tr[e], h.K[i])
			}
		}
		if p := h.Parent[i]; p != hierarchy.Nil && h.K[p] >= h.K[i] {
			t.Fatalf("parent level must be lower")
		}
	}
	// Every edge appears exactly once.
	var count int
	for i := 0; i < h.NumNodes(); i++ {
		count += len(h.Vertices[i])
	}
	if int64(count) != g.NumEdges() {
		t.Errorf("hierarchy covers %d edges, graph has %d", count, g.NumEdges())
	}
}
