package engagement

import (
	"math"
	"math/rand"
	"testing"

	"hcd/internal/coredecomp"
	"hcd/internal/gen"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
)

func build(t *testing.T, g *graph.Graph) (*hierarchy.HCD, []int32) {
	t.Helper()
	core := coredecomp.Serial(g)
	return hierarchy.BruteForce(g, core), core
}

func TestAnalyzePerfectCorrelation(t *testing.T) {
	g := gen.Onion(5, 20, 2, 2, 2, 1)
	h, core := build(t, g)
	activity := make([]float64, g.NumVertices())
	for v := range activity {
		activity[v] = float64(core[v]) * 10
	}
	rep, err := Analyze(h, core, activity)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Correlation-1) > 1e-9 {
		t.Errorf("correlation = %v, want 1", rep.Correlation)
	}
	if rep.VarCoreness > 1e-9 || rep.VarNode > 1e-9 {
		t.Errorf("noise-free activity should have zero within-group variance: %+v", rep)
	}
	// Shell means must increase with k.
	for i := 1; i < len(rep.Shells); i++ {
		if rep.Shells[i].Mean <= rep.Shells[i-1].Mean {
			t.Errorf("shell means not increasing: %+v", rep.Shells)
		}
	}
	// Counts cover every vertex.
	total := 0
	for _, s := range rep.Shells {
		total += s.Count
	}
	if total != g.NumVertices() {
		t.Errorf("shell counts sum to %d, want %d", total, g.NumVertices())
	}
}

func TestAnalyzeNodeRefinement(t *testing.T) {
	// Branched onion: the same coreness appears in several tree nodes;
	// activity carries a per-node effect that coreness cannot see.
	g := gen.Onion(4, 25, 2, 3, 3, 2)
	h, core := build(t, g)
	rng := rand.New(rand.NewSource(3))
	nodeEffect := make([]float64, h.NumNodes())
	for i := range nodeEffect {
		nodeEffect[i] = rng.Float64() * 20
	}
	activity := make([]float64, g.NumVertices())
	for v := range activity {
		activity[v] = 2*float64(core[v]) + nodeEffect[h.TID[v]] + rng.NormFloat64()
	}
	rep, err := Analyze(h, core, activity)
	if err != nil {
		t.Fatal(err)
	}
	if rep.VarNode >= rep.VarCoreness {
		t.Errorf("node grouping should refine: node %v >= coreness %v", rep.VarNode, rep.VarCoreness)
	}
	if r := rep.Refinement(); r <= 0 || r > 1 {
		t.Errorf("refinement = %v, want in (0, 1]", r)
	}
	if rep.Correlation <= 0 {
		t.Errorf("correlation = %v, want positive", rep.Correlation)
	}
}

func TestAnalyzeErrorsAndDegenerate(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	h, core := build(t, g)
	if _, err := Analyze(h, core, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Analyze(h, []int32{0}, []float64{1}); err == nil {
		t.Error("hierarchy/core mismatch accepted")
	}
	// Uniform coreness: correlation undefined (NaN), not a crash.
	rep, err := Analyze(h, core, []float64{5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(rep.Correlation) {
		t.Errorf("single-shell correlation = %v, want NaN", rep.Correlation)
	}
	// Empty graph.
	eg := graph.MustFromEdges(0, nil)
	eh, ecore := build(t, eg)
	if _, err := Analyze(eh, ecore, nil); err != nil {
		t.Errorf("empty analysis failed: %v", err)
	}
}

func TestRefinementClamps(t *testing.T) {
	r := Report{VarCoreness: 0, VarNode: 0}
	if r.Refinement() != 0 {
		t.Error("zero-variance refinement should be 0")
	}
	r = Report{VarCoreness: 1, VarNode: 2}
	if r.Refinement() != 0 {
		t.Error("negative improvement must clamp to 0")
	}
	r = Report{VarCoreness: 4, VarNode: 1}
	if math.Abs(r.Refinement()-0.75) > 1e-9 {
		t.Errorf("refinement = %v, want 0.75", r.Refinement())
	}
}
