// Package engagement implements the user-engagement analysis application
// from the paper's introduction: a vertex's coreness estimates its
// engagement level (Malliaros & Vazirgiannis, CIKM 2013), validated by the
// positive correlation between coreness and observed activity, and the
// estimate sharpens when the vertex's position in the HCD — its tree node
// — is taken into account (Lin et al., PVLDB 2021 [15]).
//
// Given per-vertex activity observations, the package reports per-shell
// activity profiles, the coreness-activity correlation, and the variance
// decomposition comparing coreness-only grouping against HCD-node
// grouping. An analyst uses these to decide whether the hierarchy position
// carries signal beyond plain coreness for their network.
package engagement

import (
	"fmt"
	"math"

	"hcd/internal/hierarchy"
)

// ShellProfile summarises activity within one k-shell.
type ShellProfile struct {
	// K is the coreness value.
	K int32
	// Count is the number of vertices with coreness K.
	Count int
	// Mean and Std are the activity mean and standard deviation.
	Mean, Std float64
}

// Report is the full engagement analysis of one (hierarchy, activity)
// pair.
type Report struct {
	// Shells holds one profile per non-empty coreness value, ascending.
	Shells []ShellProfile
	// Correlation is the Pearson correlation between coreness and
	// activity over all vertices (NaN for degenerate inputs).
	Correlation float64
	// VarCoreness is the pooled within-group activity variance when
	// vertices are grouped by coreness alone.
	VarCoreness float64
	// VarNode is the pooled within-group variance when grouped by HCD
	// tree node. VarNode <= VarCoreness indicates the hierarchy position
	// refines the engagement estimate.
	VarNode float64
}

// Refinement returns the fraction of residual variance removed by grouping
// on tree nodes instead of coreness (0 when coreness grouping is already
// perfect or the refinement does not help).
func (r Report) Refinement() float64 {
	if r.VarCoreness <= 0 {
		return 0
	}
	imp := 1 - r.VarNode/r.VarCoreness
	if imp < 0 {
		return 0
	}
	return imp
}

// Analyze computes the engagement report. core must be the coreness array
// of the graph the hierarchy was built from, and activity one observation
// per vertex (e.g. check-ins, posts, sessions).
func Analyze(h *hierarchy.HCD, core []int32, activity []float64) (Report, error) {
	n := len(core)
	if len(activity) != n {
		return Report{}, fmt.Errorf("engagement: %d activities for %d vertices", len(activity), n)
	}
	if h.NumVertices() != n {
		return Report{}, fmt.Errorf("engagement: hierarchy covers %d vertices, coreness %d", h.NumVertices(), n)
	}
	var rep Report
	if n == 0 {
		rep.Correlation = math.NaN()
		return rep, nil
	}
	// Per-shell profiles.
	kmax := int32(0)
	for _, c := range core {
		if c > kmax {
			kmax = c
		}
	}
	sums := make([]float64, kmax+1)
	sqs := make([]float64, kmax+1)
	counts := make([]int, kmax+1)
	for v := 0; v < n; v++ {
		k := core[v]
		sums[k] += activity[v]
		sqs[k] += activity[v] * activity[v]
		counts[k]++
	}
	for k := int32(0); k <= kmax; k++ {
		if counts[k] == 0 {
			continue
		}
		mean := sums[k] / float64(counts[k])
		variance := sqs[k]/float64(counts[k]) - mean*mean
		if variance < 0 {
			variance = 0
		}
		rep.Shells = append(rep.Shells, ShellProfile{
			K: k, Count: counts[k], Mean: mean, Std: math.Sqrt(variance),
		})
	}
	rep.Correlation = pearson(core, activity)
	rep.VarCoreness = pooledVariance(n, activity, func(v int) int64 { return int64(core[v]) })
	rep.VarNode = pooledVariance(n, activity, func(v int) int64 { return int64(h.TID[v]) })
	return rep, nil
}

// pearson computes the Pearson correlation of coreness vs activity.
func pearson(core []int32, activity []float64) float64 {
	n := float64(len(core))
	if n < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, syy, sxy float64
	for v := range core {
		x := float64(core[v])
		y := activity[v]
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	if vx <= 0 || vy <= 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// pooledVariance computes the within-group variance of activity under the
// given grouping.
func pooledVariance(n int, activity []float64, key func(int) int64) float64 {
	sums := map[int64]float64{}
	sqs := map[int64]float64{}
	counts := map[int64]int{}
	for v := 0; v < n; v++ {
		k := key(v)
		sums[k] += activity[v]
		sqs[k] += activity[v] * activity[v]
		counts[k]++
	}
	var ss float64
	for k, c := range counts {
		mean := sums[k] / float64(c)
		ss += sqs[k] - float64(c)*mean*mean
	}
	if n == 0 {
		return 0
	}
	v := ss / float64(n)
	if v < 0 {
		return 0
	}
	return v
}
