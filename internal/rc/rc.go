// Package rc implements the local k-core search (called RC in the paper,
// §III-E): given a vertex v, find the maximal connected subgraph containing
// v in which every vertex has coreness at least c(v) — i.e. v's k-core,
// reconstructed by BFS over {u : c(u) >= k}.
//
// RC is the essential primitive of the divide-and-conquer construction
// paradigm the paper evaluates and rejects: Table III's RC column measures
// exactly this cost, which PHCD beats by 4-125x because RC re-traverses
// every core at every level (Σ_i |core(T_i)| total work) while PHCD touches
// each edge O(α(n)) times.
package rc

import (
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
)

// Searcher performs repeated local k-core searches over one graph without
// re-allocating visit state. Not safe for concurrent use; create one
// Searcher per goroutine.
type Searcher struct {
	g     *graph.Graph
	core  []int32
	mark  []int64
	epoch int64
	queue []int32
}

// NewSearcher creates a Searcher for g with the given core decomposition
// (retained, not copied).
func NewSearcher(g *graph.Graph, core []int32) *Searcher {
	return &Searcher{
		g:    g,
		core: core,
		mark: make([]int64, g.NumVertices()),
	}
}

// Search returns the connected component of start in the subgraph induced
// by {u : c(u) >= k}. If c(start) < k the result is nil.
func (s *Searcher) Search(start int32, k int32) []int32 {
	if s.core[start] < k {
		return nil
	}
	return s.SearchFrom([]int32{start}, k)
}

// SearchFrom runs one BFS from every seed (all assumed to satisfy
// c(seed) >= k and to lie in the same component at level k, as tree-node
// vertex sets do) and returns the visited vertices.
func (s *Searcher) SearchFrom(seeds []int32, k int32) []int32 {
	s.epoch++
	q := s.queue[:0]
	var out []int32
	for _, v := range seeds {
		if s.mark[v] != s.epoch {
			s.mark[v] = s.epoch
			q = append(q, v)
		}
	}
	for len(q) > 0 {
		v := q[len(q)-1]
		q = q[:len(q)-1]
		out = append(out, v)
		for _, u := range s.g.Neighbors(v) {
			if s.core[u] >= k && s.mark[u] != s.epoch {
				s.mark[u] = s.epoch
				q = append(q, u)
			}
		}
	}
	s.queue = q
	return out
}

// RebuildParents recomputes every parent-child relation of an existing HCD
// using only local k-core searches, the way the divide-and-conquer merge
// step (§III-E step 5) would. It returns the recomputed parent array; the
// caller can compare it with h.Parent. Its cost — one full core traversal
// per tree node — is what Table III's RC column measures.
func RebuildParents(g *graph.Graph, core []int32, h *hierarchy.HCD) []hierarchy.NodeID {
	n := g.NumVertices()
	parent := make([]hierarchy.NodeID, h.NumNodes())
	for i := range parent {
		parent[i] = hierarchy.Nil
	}
	// deepest[v] = node of the deepest already-processed core containing v.
	deepest := make([]hierarchy.NodeID, n)
	for i := range deepest {
		deepest[i] = hierarchy.Nil
	}
	// Process nodes by descending level so that containment is discovered
	// innermost-first, exactly like the merge step would.
	order := make([]hierarchy.NodeID, 0, h.NumNodes())
	for i := 0; i < h.NumNodes(); i++ {
		order = append(order, hierarchy.NodeID(i))
	}
	// counting-sort by level descending
	kmax := int32(0)
	for _, k := range h.K {
		if k > kmax {
			kmax = k
		}
	}
	byLevel := make([][]hierarchy.NodeID, kmax+1)
	for _, id := range order {
		byLevel[h.K[id]] = append(byLevel[h.K[id]], id)
	}
	s := NewSearcher(g, core)
	for k := kmax; k >= 0; k-- {
		for _, id := range byLevel[k] {
			comp := s.SearchFrom(h.Vertices[id], k)
			seen := map[hierarchy.NodeID]bool{}
			for _, v := range comp {
				d := deepest[v]
				if d != hierarchy.Nil && d != id && !seen[d] && parent[d] == hierarchy.Nil {
					seen[d] = true
					parent[d] = id
				}
			}
			for _, v := range comp {
				deepest[v] = id
			}
		}
	}
	return parent
}
