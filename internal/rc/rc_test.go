package rc

import (
	"math/rand"
	"sort"
	"testing"

	"hcd/internal/coredecomp"
	"hcd/internal/gen"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
)

func TestSearchReturnsWholeCore(t *testing.T) {
	// Two K4s joined by a coreness-2 bridge.
	g := graph.MustFromEdges(9, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
		{U: 4, V: 5}, {U: 4, V: 6}, {U: 4, V: 7}, {U: 5, V: 6}, {U: 5, V: 7}, {U: 6, V: 7},
		{U: 3, V: 8}, {U: 8, V: 4},
	})
	core := coredecomp.Serial(g)
	s := NewSearcher(g, core)
	got := sorted(s.Search(0, 3))
	if !eq(got, []int32{0, 1, 2, 3}) {
		t.Errorf("3-core of 0 = %v", got)
	}
	got = sorted(s.Search(0, 2))
	if len(got) != 9 {
		t.Errorf("2-core of 0 has %d vertices, want 9", len(got))
	}
	if s.Search(8, 3) != nil {
		t.Error("search above the start's coreness must return nil")
	}
	// Reuse across epochs must not leak marks.
	got = sorted(s.Search(5, 3))
	if !eq(got, []int32{4, 5, 6, 7}) {
		t.Errorf("3-core of 5 = %v", got)
	}
}

func TestSearchFromMultipleSeeds(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	core := coredecomp.Serial(g)
	s := NewSearcher(g, core)
	got := sorted(s.SearchFrom([]int32{0, 0, 1}, 1))
	if !eq(got, []int32{0, 1}) {
		t.Errorf("dedup of seeds failed: %v", got)
	}
}

func TestRebuildParentsMatchesHierarchy(t *testing.T) {
	graphs := []*graph.Graph{
		gen.ErdosRenyi(150, 600, 31),
		gen.BarabasiAlbert(100, 4, 32),
		gen.Onion(5, 12, 2, 2, 2, 33),
	}
	for i, g := range graphs {
		core := coredecomp.Serial(g)
		h := hierarchy.BruteForce(g, core)
		got := RebuildParents(g, core, h)
		for id := range got {
			if got[id] != h.Parent[id] {
				t.Errorf("graph %d node %d: RC parent %d, want %d", i, id, got[id], h.Parent[id])
			}
		}
	}
}

func TestRebuildParentsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(80)
		edges := make([]graph.Edge, 3*n)
		for i := range edges {
			edges[i] = graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
		}
		g := graph.MustFromEdges(n, edges)
		core := coredecomp.Serial(g)
		h := hierarchy.BruteForce(g, core)
		got := RebuildParents(g, core, h)
		for id := range got {
			if got[id] != h.Parent[id] {
				t.Fatalf("trial %d node %d: RC parent %d, want %d", trial, id, got[id], h.Parent[id])
			}
		}
	}
}

func sorted(s []int32) []int32 {
	out := append([]int32(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func eq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
