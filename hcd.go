// Package hcd is a parallel hierarchical core decomposition (HCD) library:
// a from-scratch Go implementation of "Hierarchical Core Decomposition in
// Parallel: From Construction to Subgraph Search" (Chu, Zhang, Zhang, Lin,
// Zhang — ICDE 2022).
//
// The HCD of a graph organises all of its k-cores, for every k, into a
// forest: each tree node holds the vertices of coreness exactly k inside
// one k-core, and tree edges record k-core containment. On top of that
// index the library answers subgraph-search queries — "which k-core has
// the best community score?" — for any metric over the standard primary
// values (vertex/edge/boundary/triangle/triplet counts).
//
// Three pipelines, all exposed here:
//
//	g, _ := hcd.NewGraph(n, edges)
//	core := hcd.CoreDecomposition(g, hcd.Options{})       // PKC-style parallel peeling
//	h := hcd.BuildHCD(g, core, hcd.Options{})             // PHCD (parallel, Algorithm 2)
//	s := hcd.NewSearcher(g, core, h, hcd.Options{})       // PBKS preprocessing
//	r := s.Best(hcd.AverageDegree(), hcd.Options{})       // best k-core by metric
//
// Serial baselines (Batagelj-Zaversnik, LCPS, BKS) are exposed alongside
// the parallel algorithms so the paper's experiments can be reproduced;
// see DESIGN.md and EXPERIMENTS.md at the repository root.
package hcd

import (
	"io"
	"time"

	"hcd/internal/clique"
	core2 "hcd/internal/core"
	"hcd/internal/coredecomp"
	"hcd/internal/densest"
	"hcd/internal/graph"
	"hcd/internal/hierarchy"
	"hcd/internal/lcps"
	"hcd/internal/metrics"
	"hcd/internal/obs"
	"hcd/internal/search"
	"hcd/internal/shellidx"
)

// PeelKernel selects one of the pluggable core-decomposition peeling
// kernels. The zero value selects the journal-chosen default
// (DefaultPeelKernel); the losing kernels stay selectable so new
// hardware can re-run the selection experiment (see EXPERIMENTS.md
// "Peeling kernels").
type PeelKernel = coredecomp.Kernel

const (
	// PeelLevelSync is PKC-style level-synchronous peeling with
	// per-element CAS-clamped decrements.
	PeelLevelSync PeelKernel = coredecomp.KernelLevelSync
	// PeelBuffered stages cascaded frontier vertices in per-worker
	// buffers published by one fetch-and-add reservation per flush.
	PeelBuffered PeelKernel = coredecomp.KernelBuffered
	// PeelHIndex iterates local h-index updates over a worklist to
	// fixpoint, with no level barriers.
	PeelHIndex PeelKernel = coredecomp.KernelHIndex
	// DefaultPeelKernel is the kernel an unset Options.Kernel resolves
	// to, selected by the perf journal (BENCH_phcd.json).
	DefaultPeelKernel = coredecomp.DefaultKernel
)

// PeelKernels lists every selectable peeling kernel.
func PeelKernels() []PeelKernel { return coredecomp.Kernels() }

// ParsePeelKernel resolves a kernel name from flag/config input; the
// empty string resolves to DefaultPeelKernel.
func ParsePeelKernel(s string) (PeelKernel, error) { return coredecomp.ParseKernel(s) }

// Options tunes the parallel algorithms.
type Options struct {
	// Threads is the number of goroutines used by parallel phases.
	// 0 means runtime.GOMAXPROCS(0); 1 runs inline with no scheduling.
	Threads int
	// Kernel selects the core-decomposition peeling kernel used by
	// CoreDecomposition, Build, BuildAndIndex and the Ctx pipelines.
	// The zero value selects DefaultPeelKernel. All kernels produce
	// byte-identical coreness arrays; this is a performance choice only.
	Kernel PeelKernel
	// Deadline, when positive, bounds a BuildCtx call: the build's context
	// is wrapped with this timeout and a build that overruns returns
	// context.DeadlineExceeded. Ignored by the non-context entry points.
	Deadline time.Duration
	// SelfVerify makes BuildCtx run hierarchy validation on the result
	// before returning it, so a wrong-but-not-crashing parallel build is
	// caught (and replaced by the serial baseline's output) instead of
	// being served. Costs one extra pass over every k-core.
	SelfVerify bool
}

// Re-exported foundation types. The concrete implementations live in
// internal packages; these aliases are the supported public surface.
type (
	// Graph is an immutable undirected simple graph in CSR form.
	Graph = graph.Graph
	// Edge is one undirected input edge (any orientation).
	Edge = graph.Edge
	// HCD is the hierarchical core decomposition forest.
	HCD = hierarchy.HCD
	// NodeID identifies one k-core tree node of an HCD.
	NodeID = hierarchy.NodeID
	// Metric scores a subgraph from its primary values.
	Metric = metrics.Metric
	// PrimaryValues are a subgraph's n/m/boundary/triangle/triplet counts.
	PrimaryValues = metrics.PrimaryValues
	// SearchResult reports the winning k-core of a subgraph search.
	SearchResult = search.Result
	// SearchReport is the per-phase breakdown of one BestCtx call.
	SearchReport = search.Report
	// PhaseStat is one pipeline phase's duration and worker statistics,
	// as reported in BuildReport.Phases and SearchReport.Phases.
	PhaseStat = obs.PhaseStat
	// DensestSolution is an approximate densest subgraph.
	DensestSolution = densest.Solution
)

// NilNode is the absent NodeID (parent of a root, result of an empty search).
const NilNode = hierarchy.Nil

// NewGraph builds a simple undirected graph with n vertices from an edge
// list: self-loops are dropped, duplicates and reverse orientations are
// collapsed. Vertex ids must lie in [0, n).
func NewGraph(n int, edges []Edge) (*Graph, error) { return graph.FromEdges(n, edges) }

// ReadEdgeList parses a SNAP-style whitespace edge list ('#'/'%' comments
// allowed), remapping sparse ids densely and symmetrising direction.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// ReadEdgeListFile is ReadEdgeList over a file path.
func ReadEdgeListFile(path string) (*Graph, error) { return graph.ReadEdgeListFile(path) }

// ReadBinaryFile reloads a graph written with WriteBinaryFile.
func ReadBinaryFile(path string) (*Graph, error) { return graph.ReadBinaryFile(path) }

// CoreDecomposition computes every vertex's coreness with the selected
// parallel peeling kernel (Options.Kernel; the default is the
// journal-chosen DefaultPeelKernel).
func CoreDecomposition(g *Graph, opt Options) []int32 {
	return coredecomp.Peel(g, opt.Threads, opt.Kernel)
}

// CoreDecompositionSerial computes coreness with the Batagelj-Zaversnik
// O(m) serial algorithm.
func CoreDecompositionSerial(g *Graph) []int32 { return coredecomp.Serial(g) }

// BuildHCD constructs the hierarchical core decomposition in parallel with
// PHCD (Algorithm 2 of the paper). core must be g's core decomposition.
func BuildHCD(g *Graph, core []int32, opt Options) *HCD {
	return core2.PHCD(g, core, opt.Threads)
}

// BuildHCDSerial constructs the HCD with the serial LCPS baseline
// (Matula-Beck priority search, O(m)).
func BuildHCDSerial(g *Graph, core []int32) *HCD { return lcps.Build(g, core) }

// Build is the one-call pipeline: parallel core decomposition followed by
// PHCD. It returns the hierarchy and the coreness array.
func Build(g *Graph, opt Options) (*HCD, []int32) {
	core := CoreDecomposition(g, opt)
	return BuildHCD(g, core, opt), core
}

// BuildAndIndex is the full pipeline with shared preprocessing: it computes
// the core decomposition, builds the coreness-ordered adjacency layout
// (internal/shellidx) once, and reuses it for both PHCD and the PBKS
// searcher. The layout costs one extra O(m) pass but removes the
// shallower-neighbor half of PHCD's edge scans and the searcher's entire
// 2m-edge preprocessing scan, so it is the fastest route whenever a
// hierarchy will also be searched; see DESIGN.md ("When to pay for the
// layout").
func BuildAndIndex(g *Graph, opt Options) (*HCD, []int32, *Searcher) {
	core := CoreDecomposition(g, opt)
	r := coredecomp.RankVertices(core, opt.Threads)
	lay := shellidx.Build(g, core, r, opt.Threads)
	h := core2.PHCDWithLayout(g, core, lay, opt.Threads)
	s := &Searcher{ix: search.NewIndexWithLayout(g, core, h, lay, opt.Threads), h: h}
	return h, core, s
}

// Searcher answers best-k-core queries over one HCD with PBKS. Build it
// once (the §IV-A preprocessing runs here) and reuse it across metrics.
type Searcher struct {
	ix *search.Index
	h  *HCD
}

// NewSearcher prepares PBKS for the given decomposition.
func NewSearcher(g *Graph, core []int32, h *HCD, opt Options) *Searcher {
	return &Searcher{ix: search.NewIndex(g, core, h, opt.Threads), h: h}
}

// Best returns the k-core with the highest score under the metric, with
// per-node scores attached. Deterministic: ties break to lower node ids.
func (s *Searcher) Best(m Metric, opt Options) SearchResult {
	return s.ix.Search(m, opt.Threads)
}

// BestConstrained is Best restricted to k-cores whose vertex count lies in
// [minSize, maxSize] (maxSize <= 0 means unbounded) — the size-constrained
// k-core search of §VI. Node is NilNode when nothing qualifies.
func (s *Searcher) BestConstrained(m Metric, minSize, maxSize int64, opt Options) SearchResult {
	return s.ix.SearchConstrained(m, minSize, maxSize, opt.Threads)
}

// BestPerLevel returns the best-scoring k-core of every coreness level
// (indexed by k; Node == NilNode for levels with no k-core) — the per-k
// view behind §VI's "finding the best k" analyses.
func (s *Searcher) BestPerLevel(m Metric, opt Options) []SearchResult {
	return s.ix.BestPerLevel(m, opt.Threads)
}

// BestK evaluates the §VI extension: the best k-core *set* (all k-cores at
// one level, possibly disconnected) for a Type A metric. Returns the best
// k, its score, and the score of every level.
func (s *Searcher) BestK(m Metric, opt Options) (k int32, score float64, all []float64) {
	return s.ix.BestKSet(m, opt.Threads)
}

// CoreVertices materialises the original k-core of a tree node (the node's
// vertices plus all descendants').
func (s *Searcher) CoreVertices(id NodeID) []int32 { return s.h.CoreVertices(id) }

// Hierarchy returns the HCD forest the searcher answers queries over —
// the accessor a snapshot-serving tier uses to expose hierarchy
// statistics and reconstruct cores without carrying the HCD alongside
// the Searcher separately.
func (s *Searcher) Hierarchy() *HCD { return s.h }

// NumNodes reports the number of k-core tree nodes in the underlying
// hierarchy.
func (s *Searcher) NumNodes() int { return s.h.NumNodes() }

// IndexBytes reports the searcher's exclusive index footprint in bytes
// (the coreness-ordered layout or the gt/eq preprocessing arrays,
// whichever the searcher owns), computed deterministically from array
// lengths. The graph and hierarchy are shared structures accounted
// separately (Graph.Bytes, HCD.Bytes).
func (s *Searcher) IndexBytes() int64 { return s.ix.Bytes() }

// Built-in community scoring metrics (§II-D), all normalised so higher is
// better.
func AverageDegree() Metric         { return metrics.AverageDegree{} }
func InternalDensity() Metric       { return metrics.InternalDensity{} }
func CutRatio() Metric              { return metrics.CutRatio{} }
func Conductance() Metric           { return metrics.Conductance{} }
func Modularity() Metric            { return metrics.Modularity{} }
func ClusteringCoefficient() Metric { return metrics.ClusteringCoefficient{} }

// Metrics returns every built-in metric.
func Metrics() []Metric { return metrics.All() }

// MetricTerm is one (metric, coefficient) component of a WeightedMetric.
type MetricTerm = metrics.WeightedTerm

// WeightedMetric assembles a new metric as a linear combination of
// existing ones (§VI: "new or assembled community scoring metrics"); it
// plugs into Best/BestConstrained like any built-in metric.
func WeightedMetric(label string, terms ...MetricTerm) Metric {
	return metrics.Weighted{Label: label, Terms: terms}
}

// MetricByName resolves a metric by its Name() string.
func MetricByName(name string) (Metric, error) { return metrics.ByName(name) }

// DensestSubgraph returns a 0.5-approximate densest subgraph: the k-core
// with the highest average degree, found by PBKS-D. The returned solution
// is never worse than the kmax-core, the classical 0.5-approximation.
func DensestSubgraph(g *Graph, core []int32, h *HCD, opt Options) DensestSolution {
	ix := search.NewIndex(g, core, h, opt.Threads)
	return densest.PBKSD(ix, opt.Threads)
}

// ErrTooLarge is returned by DensestExact for graphs beyond the exact
// solver's enumeration limit (20 vertices).
var ErrTooLarge = densest.ErrTooLarge

// DensestExact computes the exact densest subgraph by subset enumeration.
// Exponential: it returns ErrTooLarge for graphs with more than 20
// vertices. It exists so small examples can verify the approximate
// solvers' 0.5 bound.
func DensestExact(g *Graph) (DensestSolution, error) { return densest.ExactTiny(g) }

// MaximumClique returns one maximum clique of g (branch and bound with
// coreness pruning). Exact but exponential in the worst case; fast on
// sparse real-world-like graphs.
func MaximumClique(g *Graph) []int32 { return clique.Max(g) }
